//! Fleet-scale performance baseline: the ~1M-job event-engine benchmark.
//!
//! The HCloud results were measured on real fleets (Section 5), but the
//! bench scenarios historically topped out around ~700 instances / ~2.7k
//! jobs — wall clock scaled with fleet size, which walled off the
//! multi-tenant and trace-driven directions. This binary pins the
//! timing-wheel event engine at the scale those directions need: a
//! 2-hour high-variability window densified to ~1M arrivals, run under
//! OdM (the strategy that spawns the most instances) with an aggressive
//! retention window so the fleet churns past 100k instances.
//!
//! Three identities ship with the wall-clock number, all through the
//! shared FNV digest:
//!
//! * **wheel vs heap** — the same scenario run on the timing-wheel
//!   [`EventQueue`] and the retained `BinaryHeap` reference must produce
//!   byte-identical results;
//! * **j1 vs j4** — an [`Engine`] plan executed with `HCLOUD_JOBS=1` and
//!   `4` must produce byte-identical results at every plan index;
//! * **golden** — CI diffs the fast-mode digests against the committed
//!   `crates/bench/goldens/BENCH_fleet_fast.json` and fails on drift or
//!   a >25% wall-clock regression.
//!
//! Timings go to stderr; `results/BENCH_fleet.json` carries the numbers.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use hcloud::runner::{run_scenario_queued, RunCtx};
use hcloud::{RunConfig, StrategyKind};
use hcloud_bench::fleet::{fleet_config, run_digest};
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{artifacts, Engine, ExperimentCtx, ExperimentPlan, RunSpec};
use hcloud_json::{ObjectBuilder, Value};
use hcloud_sim::event::QueueKind;
use hcloud_sim::rng::RngFactory;
use hcloud_telemetry::Profiler;
use hcloud_workloads::Scenario;

/// Timing repetitions per queue implementation; the minimum is reported.
const REPS: usize = 2;

/// The fleet run configuration: OdM churns the most instances, and a
/// short retention window (0.05x the default) releases idle instances
/// almost immediately, so the fleet re-acquires constantly — >100k
/// instances over the full run.
fn fleet_run_config() -> RunConfig {
    RunConfig::new(StrategyKind::OnDemandMixed).with_retention_mult(0.05)
}

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::PERF_FLEET;

fn main() -> ExitCode {
    registry::announce(INFO);
    let ctx = ExperimentCtx::from_env_or_exit();
    let scenario = Scenario::generate(fleet_config(ctx.fast), &RngFactory::new(ctx.master_seed));
    eprintln!(
        "[perf_fleet] scenario: high-variability fleet, {} jobs, seed {} ({} mode)",
        scenario.jobs().len(),
        ctx.master_seed,
        if ctx.fast { "fast" } else { "full" },
    );
    let config = fleet_run_config();

    // Queue identity: the same run on both event-queue implementations,
    // dispatched through the same typed `QueueKind` the `HCLOUD_QUEUE`
    // knob parses into — no hardcoded queue selection.
    let mut rows: Vec<Value> = Vec::new();
    let mut digests: Vec<String> = Vec::new();
    let mut total_ms = 0.0;
    for queue in QueueKind::ALL {
        let mut best_ms = f64::INFINITY;
        let mut dig = String::new();
        let mut events = 0usize;
        let mut instances = 0usize;
        for _ in 0..REPS {
            let factory = RngFactory::new(ctx.master_seed);
            let run_ctx = RunCtx::new(&factory);
            let start = Instant::now();
            let result = run_scenario_queued(queue, &scenario, &config, &run_ctx)
                .expect("no auditor attached");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            best_ms = best_ms.min(ms);
            events = result.counters.events_processed;
            instances = result.usage_records.len();
            dig = run_digest(&result);
        }
        total_ms += best_ms;
        eprintln!(
            "[perf_fleet] {queue:<5} {best_ms:>9.1} ms  ({events} events, {instances} instances, digest {dig})",
            queue = queue.name(),
        );

        // One extra profiled rep per queue — excluded from `total_ms`
        // (and hence from the wall-clock regression guard) so the span
        // bookkeeping never taxes the headline number. Ops counts are
        // deterministic; span wall times localize where the wheel and
        // the heap actually spend the run.
        let profiler = Profiler::enabled();
        let factory = RngFactory::new(ctx.master_seed);
        let run_ctx = RunCtx::new(&factory).with_profiler(&profiler);
        let start = Instant::now();
        let result =
            run_scenario_queued(queue, &scenario, &config, &run_ctx).expect("no auditor attached");
        let profiled_ms = start.elapsed().as_secs_f64() * 1e3;
        let profiled_dig = run_digest(&result);
        if profiled_dig != dig {
            artifacts::artifact_failure(
                "perf_fleet profiling identity",
                format!(
                    "profiled {} run diverged: {profiled_dig} vs {dig}",
                    queue.name()
                ),
            );
            return artifacts::exit_code();
        }
        let snapshot = profiler.snapshot();
        eprintln!(
            "[perf_fleet] {queue:<5} profile: {}",
            snapshot.summary(),
            queue = queue.name(),
        );

        rows.push(
            ObjectBuilder::new()
                .set("queue", queue.name())
                .set("wall_ms", best_ms)
                .set("events", events as f64)
                .set("instances", instances as f64)
                .set("digest", dig.as_str())
                .set(
                    "profile",
                    ObjectBuilder::new()
                        .set("wall_ms", profiled_ms)
                        .set("ops", snapshot.ops_json())
                        .set("span_wall_ms", snapshot.wall_ms_json())
                        .build(),
                )
                .build(),
        );
        digests.push(dig);
    }
    if digests[0] != digests[1] {
        artifacts::artifact_failure(
            "perf_fleet queue identity",
            format!(
                "timing-wheel and heap runs diverged: {} vs {}",
                digests[0], digests[1]
            ),
        );
        return artifacts::exit_code();
    }

    // Worker identity: the same two-spec plan under 1 and 4 workers.
    let shared = Arc::new(scenario);
    let plan_digests: Vec<Vec<String>> = [1usize, 4]
        .iter()
        .map(|&jobs| {
            let engine = Engine::new(ctx.with_jobs(jobs));
            let mut plan = ExperimentPlan::new();
            plan.push(
                RunSpec::on(shared.clone(), StrategyKind::OnDemandMixed).config(config.clone()),
            );
            plan.push(
                RunSpec::on(shared.clone(), StrategyKind::OnDemandMixed)
                    .config(config.clone())
                    .seed(ctx.master_seed + 1),
            );
            let outcome = engine.run_plan(&plan);
            outcome.results.iter().map(run_digest).collect()
        })
        .collect();
    let workers_identical = plan_digests[0] == plan_digests[1];
    eprintln!(
        "[perf_fleet] j1 vs j4: {} (j1 {:?})",
        if workers_identical {
            "byte-identical"
        } else {
            "DIVERGED"
        },
        plan_digests[0],
    );
    if !workers_identical {
        artifacts::artifact_failure(
            "perf_fleet worker identity",
            format!(
                "HCLOUD_JOBS=1 and 4 diverged: {:?} vs {:?}",
                plan_digests[0], plan_digests[1]
            ),
        );
        return artifacts::exit_code();
    }

    let doc = ObjectBuilder::new()
        .set("schema_version", artifacts::SCHEMA_VERSION)
        .set("bench", "perf_fleet")
        .set("mode", if ctx.fast { "fast" } else { "full" })
        .set("seed", ctx.master_seed as f64)
        .set(
            "scenario",
            ObjectBuilder::new()
                .set("kind", "high-variability-fleet")
                .set("strategy", "OdM")
                .set("retention_mult", 0.05)
                .set("jobs", shared.jobs().len() as f64)
                .build(),
        )
        .set("queues", Value::Array(rows))
        .set(
            "workers",
            ObjectBuilder::new()
                .set(
                    "j1_digests",
                    Value::Array(
                        plan_digests[0]
                            .iter()
                            .map(|d| Value::from(d.as_str()))
                            .collect(),
                    ),
                )
                .set("identical_to_j4", workers_identical)
                .build(),
        )
        .set("total_wall_ms", total_ms)
        .build();
    let path = std::path::Path::new("results").join("BENCH_fleet.json");
    let ok = std::fs::create_dir_all("results").is_ok()
        && std::fs::write(&path, doc.to_pretty() + "\n").is_ok();
    if ok {
        artifacts::artifact_written(&path);
    } else {
        artifacts::artifact_failure(format!("write {}", path.display()), "io error");
    }
    artifacts::exit_code()
}
