//! Figure 14: performance sensitivity to instance spin-up time and
//! external load (high-variability scenario).
//!
//! Left: p95 performance normalized to SR as the mean spin-up overhead
//! sweeps 0–120 s. Right: p95 performance normalized to isolation as the
//! mean external load sweeps 0–100%.

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::{write_json, ExperimentPlan, Harness, RunSpec, Table};
use hcloud_cloud::{ExternalLoadModel, SpinUpModel};
use hcloud_workloads::ScenarioKind;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::FIG14;

fn main() -> std::process::ExitCode {
    let mut h = Harness::for_experiment(INFO);
    let kind = ScenarioKind::HighVariability;

    // Both sweeps as one plan: 6 spin-up points x 5 strategies plus
    // 6 external-load points x 5 strategies.
    let spinups = [0.0, 15.0, 30.0, 60.0, 90.0, 120.0];
    let loads = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0];
    let spinup_spec = |strategy, secs| {
        RunSpec::of(kind, strategy)
            .map_config(move |c| c.with_spin_up(SpinUpModel::with_mean_secs(secs)))
    };
    let load_spec = |strategy, load| {
        RunSpec::of(kind, strategy)
            .map_config(move |c| c.with_external_load(ExternalLoadModel::with_mean(load)))
    };
    let mut plan = ExperimentPlan::new();
    for &secs in &spinups {
        for strategy in StrategyKind::ALL {
            plan.push(spinup_spec(strategy, secs));
        }
    }
    for &load in &loads {
        for strategy in StrategyKind::ALL {
            plan.push(load_spec(strategy, load));
        }
    }
    h.run_plan(plan);

    println!("Figure 14a: p95 performance (normalized to SR, %) vs spin-up overhead\n");
    let mut t = Table::new(vec!["spin-up (s)", "SR", "OdF", "OdM", "HF", "HM"]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for &secs in &spinups {
        // SR pays no spin-up; it is the per-sweep baseline.
        let sr = h
            .run(spinup_spec(StrategyKind::StaticReserved, secs))
            .p95_normalized_perf();
        let mut row = vec![format!("{secs:.0}"), "100".to_string()];
        let mut jrow = vec![secs, 100.0];
        for strategy in [
            StrategyKind::OnDemandFull,
            StrategyKind::OnDemandMixed,
            StrategyKind::HybridFull,
            StrategyKind::HybridMixed,
        ] {
            let p = h.run(spinup_spec(strategy, secs)).p95_normalized_perf() / sr * 100.0;
            row.push(format!("{p:.0}"));
            jrow.push(p);
        }
        t.row(row);
        json.push(jrow);
    }
    println!("{t}");
    println!("(paper: SR unaffected; OdF/OdM degrade most with growing spin-up,");
    println!(" hybrids hide part of the overhead in the reserved pool)\n");
    write_json(
        "fig14a_spinup",
        &["spinup_s", "SR", "OdF", "OdM", "HF", "HM"],
        &json,
    );

    println!("Figure 14b: p95 performance (normalized to isolation, %) vs external load\n");
    let mut t = Table::new(vec!["external load %", "SR", "OdF", "OdM", "HF", "HM"]);
    let mut json: Vec<Vec<f64>> = Vec::new();
    for &load in &loads {
        let mut row = vec![format!("{:.0}", load * 100.0)];
        let mut jrow = vec![load * 100.0];
        for strategy in StrategyKind::ALL {
            let p = h.run(load_spec(strategy, load)).p95_normalized_perf() * 100.0;
            row.push(format!("{p:.0}"));
            jrow.push(p);
        }
        t.row(row);
        json.push(jrow);
    }
    println!("{t}");
    println!("(paper: SR immune — no external tenants on a private system; OdF/HF");
    println!(" tolerant — full servers; HM degrades little until ~50% load; OdM");
    println!(" suffers most — all of its resources are shared)");
    write_json(
        "fig14b_external",
        &["load_pct", "SR", "OdF", "OdM", "HF", "HM"],
        &json,
    );
    h.finish("fig14")
}
