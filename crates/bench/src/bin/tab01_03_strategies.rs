//! Tables 1 and 3: qualitative comparison of provisioning configurations
//! and the strategy resource matrix.

use hcloud::StrategyKind;
use hcloud_bench::registry::{self, ExperimentInfo};
use hcloud_bench::Table;

/// This binary's entry in the experiment registry.
const INFO: &ExperimentInfo = &registry::TAB01_03;

fn main() {
    registry::announce(INFO);
    println!("Table 1: Comparison of system configurations\n");
    let mut t1 = Table::new(vec![
        "Configuration",
        "Cost",
        "Perf. unpredictability",
        "Spin-up",
        "Flexibility",
        "Typical usage",
    ]);
    t1.row(vec![
        "Reserved".into(),
        "High upfront, low per hour".into(),
        "no".into(),
        "no".into(),
        "no".into(),
        "long-term".into(),
    ]);
    t1.row(vec![
        "On-demand".into(),
        "No upfront, high per hour".into(),
        "yes".into(),
        "yes".into(),
        "yes".into(),
        "short-term".into(),
    ]);
    t1.row(vec![
        "Hybrid".into(),
        "Medium upfront, medium per hour".into(),
        "low".into(),
        "some".into(),
        "yes".into(),
        "long-term".into(),
    ]);
    println!("{t1}");

    println!("Table 3: Resource provisioning strategies\n");
    let mut t3 = Table::new(vec!["", "SR", "OdF", "OdM", "HF", "HM"]);
    let yes_no = |b: bool| if b { "Yes" } else { "No" }.to_string();
    t3.row(
        std::iter::once("Reserved resources".to_string())
            .chain(StrategyKind::ALL.iter().map(|s| yes_no(s.uses_reserved())))
            .collect(),
    );
    t3.row(
        std::iter::once("On-demand resources".to_string())
            .chain(StrategyKind::ALL.iter().map(|s| {
                if !s.uses_on_demand() {
                    "No".to_string()
                } else if s.on_demand_full_only() {
                    "Yes (full servers)".to_string()
                } else {
                    "Yes".to_string()
                }
            }))
            .collect(),
    );
    println!("{t3}");
}
