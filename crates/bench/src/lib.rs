//! # hcloud-bench — the benchmark harness
//!
//! One binary per table and figure of the HCloud paper (see `src/bin/`),
//! plus Criterion micro-benchmarks for the Section 5.2 overheads
//! (`benches/overheads.rs`). This library holds the shared plumbing:
//!
//! * [`engine`] — the parallel experiment engine: typed [`RunSpec`]
//!   points submitted as an [`ExperimentPlan`], fanned out across a
//!   scoped thread pool, collected deterministically in plan order;
//! * [`harness`] — a thin caching facade over the engine, so sweeps that
//!   only re-bill the same run (Figures 12, 13, 17) run each simulation
//!   once;
//! * [`report`] — aligned text tables, ASCII sparklines/heatmaps, and
//!   JSON series export, so every binary prints the same rows/series the
//!   paper plots and optionally dumps machine-readable data under
//!   `results/`.
//!
//! Run everything with:
//!
//! ```text
//! for b in crates/bench/src/bin/*.rs; do
//!     b=$(basename "$b" .rs)
//!     cargo run --release -p hcloud-bench --bin "$b"
//! done
//! ```
//!
//! Every binary honours `HCLOUD_FAST=1` to shrink scenarios for smoke
//! runs, `HCLOUD_SEED=<n>` to change the master seed, and
//! `HCLOUD_JOBS=<n>` to pin the engine's worker count (default:
//! `available_parallelism`). Results are bit-identical for any worker
//! count. `HCLOUD_TRACE=summary` adds per-phase spans to the stderr
//! telemetry; `HCLOUD_TRACE=full` additionally records every simulated
//! run as a structured JSONL trace under `results/traces/` (replay with
//! `hcloud-cli trace`). Traces are stamped with sim time only, so they
//! too are bit-identical for any worker count.
//! `HCLOUD_FAULTS=<plan>` overlays a deterministic fault-injection plan
//! (`hcloud-cli faults` lists the built-ins) onto every run that does
//! not set its own; the default `off` injects nothing and consumes no
//! randomness. Malformed values are a hard error.

pub mod artifacts;
pub mod dashboard;
pub mod engine;
pub mod env;
pub mod fleet;
pub mod harness;
pub mod plot;
pub mod registry;
pub mod report;

pub use engine::{
    Engine, ExperimentCtx, ExperimentPlan, PlanOutcome, PlanTelemetry, RunSpec, RunTelemetry,
    RunTrace,
};
pub use env::EnvOpts;
pub use harness::{paper_scenario, Harness};
pub use registry::{ExperimentInfo, ExperimentKind};
pub use report::{heatmap_row, sparkline, write_json, Table};
