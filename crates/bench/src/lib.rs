//! # hcloud-bench — the benchmark harness
//!
//! One binary per table and figure of the HCloud paper (see `src/bin/`),
//! plus Criterion micro-benchmarks for the Section 5.2 overheads
//! (`benches/overheads.rs`). This library holds the shared plumbing:
//!
//! * [`harness`] — scenario/strategy run helpers with in-process caching
//!   so sweeps that only re-bill the same run (Figures 12, 13, 17) run
//!   each simulation once;
//! * [`report`] — aligned text tables, ASCII sparklines/heatmaps, and
//!   JSON series export, so every binary prints the same rows/series the
//!   paper plots and optionally dumps machine-readable data under
//!   `results/`.
//!
//! Run everything with:
//!
//! ```text
//! for b in crates/bench/src/bin/*.rs; do
//!     b=$(basename "$b" .rs)
//!     cargo run --release -p hcloud-bench --bin "$b"
//! done
//! ```
//!
//! Every binary honours `HCLOUD_FAST=1` to shrink scenarios for smoke
//! runs, and `HCLOUD_SEED=<n>` to change the master seed.

pub mod harness;
pub mod plot;
pub mod report;

pub use harness::{paper_scenario, Harness};
pub use report::{heatmap_row, sparkline, write_json, Table};
