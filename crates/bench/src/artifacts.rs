//! Artifact-write bookkeeping shared by every figure binary.
//!
//! `report::write_json`, `plot::save_both`, and the harness's flight
//! recorder all funnel their success/failure reporting through here: one
//! place that prints the `(wrote …)` / `warning: cannot …` stderr lines,
//! counts artifacts, accumulates the `report` phase span, and latches a
//! process-wide failure flag so [`crate::Harness::finish`] can turn the
//! exit code nonzero instead of silently losing results.

use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use hcloud_telemetry::{ProfSpan, ProfileSnapshot};

/// Version stamped into every `results/*.json` artifact's `meta` block.
/// Version 1 is the historical unstamped `{columns, rows}` format;
/// version 2 adds the `meta` envelope (producing experiment id +
/// deterministic profiling op counts). The dashboard flags artifacts
/// stamped with any other version as stale.
pub const SCHEMA_VERSION: u64 = 2;

static FAILED: AtomicBool = AtomicBool::new(false);
static WRITTEN: AtomicUsize = AtomicUsize::new(0);
static REPORT_US: AtomicU64 = AtomicU64::new(0);
static PROF_OPS: [AtomicU64; hcloud_telemetry::profile::PROF_SPANS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Accumulates a finished plan's profiling op counts into the
/// process-wide totals [`crate::report::write_json`] stamps into
/// artifacts. Only the deterministic op counts are kept — wall clock
/// stays on stderr and in the perf benches' own artifacts, so committed
/// `results/*.json` bytes never depend on the machine or worker count.
pub fn add_profile(snapshot: &ProfileSnapshot) {
    for span in ProfSpan::ALL {
        PROF_OPS[span as usize].fetch_add(snapshot.get(span).ops, Ordering::Relaxed);
    }
}

/// The accumulated profiling op counts so far, span-ordered; `None`
/// until any span has recorded an operation (profiling disabled).
pub fn profile_ops() -> Option<[(&'static str, u64); hcloud_telemetry::profile::PROF_SPANS]> {
    let counts =
        ProfSpan::ALL.map(|span| (span.name(), PROF_OPS[span as usize].load(Ordering::Relaxed)));
    counts.iter().any(|(_, ops)| *ops > 0).then_some(counts)
}

/// Reports a successfully written artifact: one `(wrote <path>)` line on
/// stderr (stdout stays byte-identical across worker counts).
pub fn artifact_written(path: &Path) {
    WRITTEN.fetch_add(1, Ordering::Relaxed);
    eprintln!("(wrote {})", path.display());
}

/// Reports a failed artifact write: prints `warning: cannot <what>: <e>`
/// and latches the process-wide failure flag, so the binary still prints
/// its figures but exits nonzero.
pub fn artifact_failure(what: impl std::fmt::Display, error: impl std::fmt::Display) {
    FAILED.store(true, Ordering::Relaxed);
    eprintln!("warning: cannot {what}: {error}");
}

/// Whether any artifact write has failed so far in this process.
pub fn any_failure() -> bool {
    FAILED.load(Ordering::Relaxed)
}

/// Artifacts successfully written so far in this process.
pub fn artifacts_written() -> usize {
    WRITTEN.load(Ordering::Relaxed)
}

/// Adds wall-clock time to the `report` phase span (serialization +
/// file writes).
pub fn add_report_span(elapsed: Duration) {
    REPORT_US.fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
}

/// Total `report` phase time accumulated so far.
pub fn report_span() -> Duration {
    Duration::from_micros(REPORT_US.load(Ordering::Relaxed))
}

/// The process exit code artifact health dictates: success unless some
/// write failed.
pub fn exit_code() -> ExitCode {
    if any_failure() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test owns the process-global latch: ordering within a single
    // test keeps the assertions race-free under the parallel test runner.
    #[test]
    fn failure_latches_and_flips_exit_code() {
        let before = artifacts_written();
        artifact_written(Path::new("results/example.json"));
        assert_eq!(artifacts_written(), before + 1);

        // ExitCode has no PartialEq; the Debug form distinguishes 0 from 1.
        assert!(!any_failure());
        assert_eq!(
            format!("{:?}", exit_code()),
            format!("{:?}", ExitCode::SUCCESS)
        );
        artifact_failure("write results/example.json", "permission denied");
        assert!(any_failure());
        assert_eq!(
            format!("{:?}", exit_code()),
            format!("{:?}", ExitCode::FAILURE)
        );

        add_report_span(Duration::from_millis(3));
        assert!(report_span() >= Duration::from_millis(3));
    }
}
