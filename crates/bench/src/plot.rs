//! Static SVG renderings of the paper's figures.
//!
//! Charts follow a fixed visual contract:
//!
//! * **Color by entity, fixed order, never cycled**: each provisioning
//!   strategy owns one categorical slot (SR blue, OdF aqua, OdM yellow,
//!   HF green, HM violet) in every figure. The palette (both modes) was
//!   machine-validated for lightness band, chroma floor, adjacent-pair
//!   CVD separation and surface contrast; the light-mode aqua/yellow
//!   slots sit below 3:1 contrast, so every chart ships direct end
//!   labels and a legend, and the underlying numbers live in the
//!   adjacent `results/*.json` table files.
//! * **Marks**: 2 px lines with round joins, ≥8 px markers wearing a 2 px
//!   surface ring, bars ≤24 px with 4 px rounded data ends and square
//!   baselines, 2 px surface gaps between touching marks, 1 px solid
//!   one-step-off-surface gridlines.
//! * **Text wears text tokens**, never the series color; identity comes
//!   from a colored key beside the label.
//! * Each figure renders twice — a light and a **selected** dark variant
//!   (dark steps of the same hues, validated against the dark surface).
//! * Markers carry `<title>` elements, so browsers show native value
//!   tooltips.

use std::fmt::Write as _;

/// One visual theme (light or dark), with validated palette steps.
#[derive(Debug, Clone, Copy)]
pub struct Theme {
    /// Chart surface color.
    pub surface: &'static str,
    /// Primary ink.
    pub text_primary: &'static str,
    /// Secondary ink (axis labels, legends).
    pub text_secondary: &'static str,
    /// One-step-off-surface gridline gray.
    pub grid: &'static str,
    /// The categorical series palette, in fixed slot order.
    pub series: [&'static str; 5],
    /// File-name suffix.
    pub suffix: &'static str,
}

/// The validated light theme.
pub const LIGHT: Theme = Theme {
    surface: "#fcfcfb",
    text_primary: "#0b0b0b",
    text_secondary: "#52514e",
    grid: "#e9e8e4",
    series: ["#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7"],
    suffix: "light",
};

/// The validated dark theme (selected steps, not a flip).
pub const DARK: Theme = Theme {
    surface: "#1a1a19",
    text_primary: "#ffffff",
    text_secondary: "#c3c2b7",
    grid: "#2c2c2a",
    series: ["#3987e5", "#199e70", "#c98500", "#008300", "#9085e9"],
    suffix: "dark",
};

const WIDTH: f64 = 760.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 110.0; // room for direct end labels
const MARGIN_T: f64 = 64.0;
const MARGIN_B: f64 = 56.0;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend/end-label name.
    pub name: String,
    /// Data points, ascending x.
    pub points: Vec<(f64, f64)>,
}

/// A multi-series line chart.
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title (names the single series when there is only one).
    pub title: String,
    /// X-axis caption.
    pub x_label: String,
    /// Y-axis caption.
    pub y_label: String,
    /// The series, in fixed slot order.
    pub series: Vec<Series>,
    /// Optional y-axis cap: series exceeding it are clipped at the plot
    /// edge (the paper caps Figure 12's axis the same way). `None`
    /// auto-scales to the data.
    pub y_max: Option<f64>,
}

/// Rounds a raw tick step to a clean 1/2/5×10ⁿ value.
fn nice_step(span: f64) -> f64 {
    if span <= 0.0 {
        return 1.0;
    }
    let raw = span / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let snapped = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    snapped * mag
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        let thousands = v / 1000.0;
        if (thousands - thousands.round()).abs() < 1e-9 {
            format!("{:.0}k", thousands)
        } else {
            format!("{thousands:.1}k")
        }
    } else if v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

struct Frame {
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
}

impl Frame {
    fn x(&self, v: f64) -> f64 {
        let span = (self.x1 - self.x0).max(1e-12);
        MARGIN_L + (v - self.x0) / span * (WIDTH - MARGIN_L - MARGIN_R)
    }
    fn y(&self, v: f64) -> f64 {
        let span = (self.y1 - self.y0).max(1e-12);
        HEIGHT - MARGIN_B - (v - self.y0) / span * (HEIGHT - MARGIN_T - MARGIN_B)
    }
}

fn chart_header(out: &mut String, title: &str, theme: &Theme) {
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="system-ui, sans-serif">"#
    );
    let _ = write!(
        out,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="{}"/>"#,
        theme.surface
    );
    let _ = write!(
        out,
        r#"<text x="{MARGIN_L}" y="26" font-size="15" font-weight="600" fill="{}">{}</text>"#,
        theme.text_primary,
        esc(title)
    );
}

fn legend(out: &mut String, names: &[&str], theme: &Theme) {
    // One legend row under the title; identity from the swatch, text in ink.
    let mut x = MARGIN_L;
    for (i, name) in names.iter().enumerate() {
        let color = theme.series[i % theme.series.len()];
        let _ = write!(
            out,
            r#"<circle cx="{:.1}" cy="42" r="4.5" fill="{color}" stroke="{}" stroke-width="2"/>"#,
            x + 4.0,
            theme.surface
        );
        let _ = write!(
            out,
            r#"<text x="{:.1}" y="46" font-size="12" fill="{}">{}</text>"#,
            x + 13.0,
            theme.text_secondary,
            esc(name)
        );
        x += 13.0 + 8.0 * name.len() as f64 + 22.0;
    }
}

fn axes(out: &mut String, frame: &Frame, x_label: &str, y_label: &str, theme: &Theme) {
    // Y gridlines + ticks at clean numbers.
    let step = nice_step(frame.y1 - frame.y0);
    let mut v = (frame.y0 / step).ceil() * step;
    while v <= frame.y1 + 1e-9 {
        let y = frame.y(v);
        let _ = write!(
            out,
            r#"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{}" stroke-width="1"/>"#,
            WIDTH - MARGIN_R,
            theme.grid
        );
        let _ = write!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end" fill="{}" font-variant-numeric="tabular-nums">{}</text>"#,
            MARGIN_L - 8.0,
            y + 4.0,
            theme.text_secondary,
            fmt_tick(v)
        );
        v += step;
    }
    // Axis captions.
    let _ = write!(
        out,
        r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle" fill="{}">{}</text>"#,
        (MARGIN_L + WIDTH - MARGIN_R) / 2.0,
        HEIGHT - 14.0,
        theme.text_secondary,
        esc(x_label)
    );
    let _ = write!(
        out,
        r#"<text x="18" y="{:.1}" font-size="12" text-anchor="middle" fill="{}" transform="rotate(-90 18 {:.1})">{}</text>"#,
        (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
        theme.text_secondary,
        (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
        esc(y_label)
    );
}

impl LineChart {
    /// Renders the chart as a standalone SVG document.
    pub fn render_svg(&self, theme: &Theme) -> String {
        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .collect();
        let (x0, x1) = bounds(&xs);
        let (mut y0, y1) = bounds(&ys);
        y0 = y0.min(0.0);
        let y1 = match self.y_max {
            Some(cap) => cap,
            None => y1 * 1.05,
        };
        let frame = Frame { x0, x1, y0, y1 };

        let mut out = String::new();
        chart_header(&mut out, &self.title, theme);
        // Clip series marks to the plot area so capped-axis outliers exit
        // the frame instead of invading the margins.
        let _ = write!(
            out,
            r#"<clipPath id="plot"><rect x="{MARGIN_L}" y="{MARGIN_T}" width="{:.1}" height="{:.1}"/></clipPath>"#,
            WIDTH - MARGIN_L - MARGIN_R,
            HEIGHT - MARGIN_T - MARGIN_B
        );
        if self.series.len() >= 2 {
            let names: Vec<&str> = self.series.iter().map(|s| s.name.as_str()).collect();
            legend(&mut out, &names, theme);
        }
        axes(&mut out, &frame, &self.x_label, &self.y_label, theme);

        // X ticks at clean values.
        let step = nice_step(x1 - x0);
        let mut v = (x0 / step).ceil() * step;
        while v <= x1 + 1e-9 {
            let _ = write!(
                out,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="middle" fill="{}" font-variant-numeric="tabular-nums">{}</text>"#,
                frame.x(v),
                HEIGHT - MARGIN_B + 18.0,
                theme.text_secondary,
                fmt_tick(v)
            );
            v += step;
        }

        out.push_str(r#"<g clip-path="url(#plot)">"#);
        for (i, series) in self.series.iter().enumerate() {
            let color = theme.series[i % theme.series.len()];
            let mut d = String::new();
            for (k, &(x, y)) in series.points.iter().enumerate() {
                let _ = write!(
                    d,
                    "{}{:.1} {:.1}",
                    if k == 0 { "M" } else { " L" },
                    frame.x(x),
                    frame.y(y)
                );
            }
            let _ = write!(
                out,
                r#"<path d="{d}" fill="none" stroke="{color}" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>"#
            );
            // Markers with a surface ring and native tooltips.
            for &(x, y) in &series.points {
                let _ = write!(
                    out,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="4" fill="{color}" stroke="{}" stroke-width="2"><title>{}: {} at {}</title></circle>"#,
                    frame.x(x),
                    frame.y(y),
                    theme.surface,
                    esc(&series.name),
                    fmt_tick(y),
                    fmt_tick(x)
                );
            }
        }
        out.push_str("</g>");

        // Direct end labels, de-collided: labels keep >= 13px vertical
        // separation; a moved label gets a hairline leader back to its
        // line end (never stacked detached text).
        let mut ends: Vec<(usize, f64, f64)> = self
            .series
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.points
                    .last()
                    .filter(|&&(_, y)| y <= frame.y1 && y >= frame.y0)
                    .map(|&(x, y)| (i, frame.x(x), frame.y(y)))
            })
            .collect();
        ends.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite label y"));
        let mut placed: Vec<f64> = Vec::new();
        for &(_, _, y) in &ends {
            let min_y = placed.last().map_or(f64::MIN, |&p| p + 13.0);
            placed.push(y.max(min_y));
        }
        for ((i, x, y), label_y) in ends.into_iter().zip(placed) {
            let color = theme.series[i % theme.series.len()];
            if (label_y - y).abs() > 2.0 {
                let _ = write!(
                    out,
                    r#"<line x1="{:.1}" y1="{y:.1}" x2="{:.1}" y2="{label_y:.1}" stroke="{color}" stroke-width="1"/>"#,
                    x + 5.0,
                    x + 9.0
                );
            }
            let _ = write!(
                out,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{}">{}</text>"#,
                x + 11.0,
                label_y + 4.0,
                theme.text_primary,
                esc(&self.series[i].name)
            );
        }
        out.push_str("</svg>");
        out
    }
}

/// A five-number summary for one box of a box chart.
#[derive(Debug, Clone, Copy)]
pub struct BoxStats {
    /// Lower whisker (p5).
    pub p5: f64,
    /// Box bottom (p25).
    pub p25: f64,
    /// The mean line the paper draws.
    pub mean: f64,
    /// Box top (p75).
    pub p75: f64,
    /// Upper whisker (p95).
    pub p95: f64,
}

/// One x-axis group (e.g. a scenario) with one box per series.
#[derive(Debug, Clone)]
pub struct BoxGroup {
    /// Group caption.
    pub label: String,
    /// `(series index, stats)` — series index selects the palette slot.
    pub boxes: Vec<(usize, BoxStats)>,
}

/// A grouped box chart (the paper's Figures 4 and 10).
#[derive(Debug, Clone)]
pub struct BoxChart {
    /// Chart title.
    pub title: String,
    /// Y-axis caption.
    pub y_label: String,
    /// Series names by palette slot (for the legend).
    pub series_names: Vec<String>,
    /// The groups, left to right.
    pub groups: Vec<BoxGroup>,
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if lo.is_finite() && hi.is_finite() {
        (lo, hi)
    } else {
        (0.0, 1.0)
    }
}

impl BoxChart {
    /// Renders the chart as a standalone SVG document.
    pub fn render_svg(&self, theme: &Theme) -> String {
        let ys: Vec<f64> = self
            .groups
            .iter()
            .flat_map(|g| g.boxes.iter().flat_map(|(_, b)| [b.p5, b.p95]))
            .collect();
        let (mut y0, y1) = bounds(&ys);
        y0 = y0.min(0.0);
        let frame = Frame {
            x0: 0.0,
            x1: 1.0,
            y0,
            y1: y1 * 1.05,
        };

        let mut out = String::new();
        chart_header(&mut out, &self.title, theme);
        let names: Vec<&str> = self.series_names.iter().map(String::as_str).collect();
        if names.len() >= 2 {
            legend(&mut out, &names, theme);
        }
        axes(&mut out, &frame, "", &self.y_label, theme);

        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let group_w = plot_w / self.groups.len() as f64;
        for (gi, group) in self.groups.iter().enumerate() {
            let gx = MARGIN_L + group_w * (gi as f64 + 0.5);
            let _ = write!(
                out,
                r#"<text x="{gx:.1}" y="{:.1}" font-size="12" text-anchor="middle" fill="{}">{}</text>"#,
                HEIGHT - MARGIN_B + 18.0,
                theme.text_secondary,
                esc(&group.label)
            );
            let n = group.boxes.len() as f64;
            // ≤24px boxes with ≥2px surface gaps between neighbours.
            let box_w = (group_w * 0.8 / n - 2.0).clamp(6.0, 24.0);
            let pitch = box_w + 4.0;
            let start = gx - pitch * (n - 1.0) / 2.0;
            for (k, (slot, b)) in group.boxes.iter().enumerate() {
                let color = theme.series[slot % theme.series.len()];
                let cx = start + pitch * k as f64;
                // Whiskers.
                let _ = write!(
                    out,
                    r#"<line x1="{cx:.1}" y1="{:.1}" x2="{cx:.1}" y2="{:.1}" stroke="{color}" stroke-width="2" stroke-linecap="round"/>"#,
                    frame.y(b.p5),
                    frame.y(b.p95)
                );
                // Box (rounded 4px data ends).
                let top = frame.y(b.p75);
                let bottom = frame.y(b.p25);
                let _ = write!(
                    out,
                    r#"<rect x="{:.1}" y="{top:.1}" width="{box_w:.1}" height="{:.1}" rx="4" fill="{color}"><title>{} / {}: p25 {} · mean {} · p75 {}</title></rect>"#,
                    cx - box_w / 2.0,
                    (bottom - top).max(2.0),
                    esc(&group.label),
                    esc(&self.series_names[*slot]),
                    fmt_tick(b.p25),
                    fmt_tick(b.mean),
                    fmt_tick(b.p75)
                );
                // Mean line in the surface color across the box.
                let _ = write!(
                    out,
                    r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{}" stroke-width="2"/>"#,
                    cx - box_w / 2.0,
                    frame.y(b.mean),
                    cx + box_w / 2.0,
                    frame.y(b.mean),
                    theme.surface
                );
            }
        }
        out.push_str("</svg>");
        out
    }
}

/// Writes a chart under `results/figures/<name>_<mode>.svg` for both
/// themes. Returns whether every write succeeded; failures are reported
/// through [`crate::artifacts`] and latch a nonzero process exit (via
/// [`crate::Harness::finish`]) while the figure still prints to stdout.
pub fn save_both(name: &str, render: impl Fn(&Theme) -> String) -> bool {
    let started = std::time::Instant::now();
    let dir = std::path::Path::new("results/figures");
    if let Err(e) = std::fs::create_dir_all(dir) {
        crate::artifacts::artifact_failure(format!("create {}", dir.display()), e);
        crate::artifacts::add_report_span(started.elapsed());
        return false;
    }
    let mut ok = true;
    for theme in [&LIGHT, &DARK] {
        let path = dir.join(format!("{name}_{}.svg", theme.suffix));
        match std::fs::write(&path, render(theme)) {
            Err(e) => {
                crate::artifacts::artifact_failure(format!("write {}", path.display()), e);
                ok = false;
            }
            Ok(()) => crate::artifacts::artifact_written(&path),
        }
    }
    crate::artifacts::add_report_span(started.elapsed());
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_chart() -> LineChart {
        LineChart {
            title: "test".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            y_max: None,
            series: vec![
                Series {
                    name: "SR".into(),
                    points: vec![(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)],
                },
                Series {
                    name: "HM".into(),
                    points: vec![(0.0, 0.5), (1.0, 0.7), (2.0, 2.5)],
                },
            ],
        }
    }

    #[test]
    fn line_chart_is_valid_svg_with_marks_and_legend() {
        for theme in [&LIGHT, &DARK] {
            let svg = line_chart().render_svg(theme);
            assert!(svg.starts_with("<svg"));
            assert!(svg.ends_with("</svg>"));
            assert!(svg.contains("stroke-width=\"2\""), "2px lines required");
            assert!(
                svg.matches("<circle").count() >= 6,
                "markers on every point"
            );
            assert!(svg.contains("<title>"), "native tooltips required");
            // Legend present for >= 2 series.
            assert!(svg.contains(">SR</text>") && svg.contains(">HM</text>"));
            // Surface ring on markers.
            assert!(svg.contains(&format!("stroke=\"{}\"", theme.surface)));
        }
    }

    #[test]
    fn single_series_has_no_legend_row() {
        let mut c = line_chart();
        c.series.truncate(1);
        let svg = c.render_svg(&LIGHT);
        // The name appears once as the direct end label, not again as legend.
        assert_eq!(svg.matches(">SR</text>").count(), 1);
    }

    #[test]
    fn box_chart_draws_boxes_with_gaps() {
        let chart = BoxChart {
            title: "boxes".into(),
            y_label: "minutes".into(),
            series_names: vec!["SR".into(), "OdF".into()],
            groups: vec![BoxGroup {
                label: "Static".into(),
                boxes: vec![
                    (
                        0,
                        BoxStats {
                            p5: 1.0,
                            p25: 2.0,
                            mean: 3.0,
                            p75: 4.0,
                            p95: 5.0,
                        },
                    ),
                    (
                        1,
                        BoxStats {
                            p5: 2.0,
                            p25: 3.0,
                            mean: 4.0,
                            p75: 5.0,
                            p95: 6.0,
                        },
                    ),
                ],
            }],
        };
        let svg = chart.render_svg(&LIGHT);
        assert_eq!(svg.matches("<rect x=").count(), 2);
        assert!(svg.contains("rx=\"4\""), "4px rounded data ends");
        assert!(svg.contains("Static"));
    }

    #[test]
    fn ticks_are_clean_numbers() {
        assert_eq!(nice_step(10.0), 2.0);
        assert_eq!(nice_step(97.0), 20.0);
        assert_eq!(nice_step(0.9), 0.2);
        assert_eq!(fmt_tick(2000.0), "2k");
        assert_eq!(fmt_tick(2.0), "2");
        assert_eq!(fmt_tick(0.25), "0.25");
    }

    #[test]
    fn capped_axis_clips_but_keeps_other_labels() {
        let mut c = line_chart();
        c.series[1].points = vec![(0.0, 100.0), (2.0, 100.0)]; // outlier
        c.y_max = Some(3.0);
        let svg = c.render_svg(&LIGHT);
        assert!(svg.contains("clipPath"));
        // The outlier's end label is suppressed; the in-range one stays.
        assert_eq!(svg.matches(">HM</text>").count(), 1, "legend only");
        assert_eq!(svg.matches(">SR</text>").count(), 2, "legend + end label");
    }

    #[test]
    fn colliding_end_labels_get_leader_lines() {
        let c = LineChart {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            y_max: None,
            series: vec![
                Series {
                    name: "A".into(),
                    points: vec![(0.0, 1.00), (1.0, 1.00)],
                },
                Series {
                    name: "B".into(),
                    points: vec![(0.0, 1.01), (1.0, 1.01)],
                },
                Series {
                    name: "C".into(),
                    points: vec![(0.0, 1.02), (1.0, 1.02)],
                },
            ],
        };
        let svg = c.render_svg(&LIGHT);
        // At least one label was moved and connected by a 1px leader.
        assert!(svg.contains(r#"stroke-width="1"/>"#));
        for name in ["A", "B", "C"] {
            assert!(svg.contains(&format!(">{name}</text>")));
        }
    }

    #[test]
    fn text_is_escaped() {
        let mut c = line_chart();
        c.title = "a < b & c".into();
        let svg = c.render_svg(&LIGHT);
        assert!(svg.contains("a &lt; b &amp; c"));
    }
}
