//! Shared experiment plumbing for the figure binaries.

use std::collections::HashMap;

use hcloud::runner::run_scenario;
use hcloud::{RunConfig, RunResult, StrategyKind};
use hcloud_sim::rng::RngFactory;
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};

/// The master seed, overridable via `HCLOUD_SEED`.
pub fn master_seed() -> u64 {
    std::env::var("HCLOUD_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Whether fast (smoke-test) mode is on: `HCLOUD_FAST=1`.
pub fn fast_mode() -> bool {
    std::env::var("HCLOUD_FAST").is_ok_and(|v| v == "1")
}

/// The scenario configuration the binaries use: paper scale normally, a
/// scaled-down variant under `HCLOUD_FAST=1`.
pub fn scenario_config(kind: ScenarioKind) -> ScenarioConfig {
    if fast_mode() {
        ScenarioConfig::scaled(kind, 0.15, 25)
    } else {
        ScenarioConfig::paper(kind)
    }
}

/// Generates the paper scenario for `kind` under the ambient seed/mode.
pub fn paper_scenario(kind: ScenarioKind) -> Scenario {
    Scenario::generate(scenario_config(kind), &RngFactory::new(master_seed()))
}

/// An experiment harness caching scenarios and runs, so sweeps that
/// re-bill or re-aggregate the same simulation don't re-run it.
pub struct Harness {
    factory: RngFactory,
    scenarios: HashMap<ScenarioKind, Scenario>,
    runs: HashMap<(ScenarioKind, StrategyKind, bool), RunResult>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// Creates a harness under the ambient seed.
    pub fn new() -> Harness {
        Harness {
            factory: RngFactory::new(master_seed()),
            scenarios: HashMap::new(),
            runs: HashMap::new(),
        }
    }

    /// The RNG factory used for runs.
    pub fn factory(&self) -> &RngFactory {
        &self.factory
    }

    /// The (cached) scenario for `kind`.
    pub fn scenario(&mut self, kind: ScenarioKind) -> &Scenario {
        let factory = self.factory;
        self.scenarios
            .entry(kind)
            .or_insert_with(|| Scenario::generate(scenario_config(kind), &factory))
    }

    /// Runs (or returns the cached run of) `strategy` on `kind` with the
    /// default configuration.
    pub fn run(
        &mut self,
        kind: ScenarioKind,
        strategy: StrategyKind,
        profiling: bool,
    ) -> &RunResult {
        let factory = self.factory;
        if !self.runs.contains_key(&(kind, strategy, profiling)) {
            let scenario = self.scenario(kind).clone();
            let mut config = RunConfig::new(strategy);
            config.profiling = profiling;
            let result = run_scenario(&scenario, &config, &factory);
            self.runs.insert((kind, strategy, profiling), result);
        }
        &self.runs[&(kind, strategy, profiling)]
    }

    /// Runs `config` on `kind` without caching (for custom-config sweeps).
    pub fn run_config(&mut self, kind: ScenarioKind, config: &RunConfig) -> RunResult {
        let factory = self.factory;
        let scenario = self.scenario(kind).clone();
        run_scenario(&scenario, config, &factory)
    }

    /// Runs `config` on an explicitly provided scenario.
    pub fn run_on(&self, scenario: &Scenario, config: &RunConfig) -> RunResult {
        run_scenario(scenario, config, &self.factory)
    }
}
