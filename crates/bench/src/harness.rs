//! Shared experiment plumbing for the figure binaries: a thin caching
//! facade over the [`crate::engine`].
//!
//! The [`Harness`] owns an [`ExperimentCtx`] (parsed once from
//! `HCLOUD_SEED` / `HCLOUD_FAST` / `HCLOUD_JOBS`), a scenario cache, and
//! a run cache keyed by the full [`RunSpec`] identity. Sweeps that
//! re-bill or re-aggregate the same simulation (Figures 12, 13, 17) hit
//! the cache; everything else flows through the parallel engine, so a
//! figure binary saturates the machine by submitting its grid as one
//! [`ExperimentPlan`].

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

use hcloud::RunResult;
use hcloud_sim::rng::RngFactory;
use hcloud_telemetry::FlightRecorder;
use hcloud_workloads::{Scenario, ScenarioKind};

use crate::artifacts;
use crate::engine::{Engine, ExperimentCtx, ExperimentPlan, PlanTelemetry, RunSpec, RunTrace};
use crate::registry::{self, ExperimentInfo};

/// Generates the paper scenario for `kind` under the ambient
/// seed/fast-mode environment (hard error on malformed variables).
pub fn paper_scenario(kind: ScenarioKind) -> Scenario {
    let ctx = ExperimentCtx::from_env_or_exit();
    ctx.scenario(kind, None)
}

/// An experiment harness: run cache in front of the parallel engine.
pub struct Harness {
    engine: Engine,
    scenarios: HashMap<ScenarioKind, Arc<Scenario>>,
    cache: HashMap<String, Arc<RunResult>>,
    session: PlanTelemetry,
    cache_hits: usize,
    traces: Vec<RunTrace>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// A harness under the ambient environment (exits with a clear
    /// message on malformed `HCLOUD_*` variables).
    pub fn new() -> Harness {
        Harness::with_ctx(ExperimentCtx::from_env_or_exit())
    }

    /// [`Harness::new`], announcing `info` as the running experiment so
    /// every artifact this process writes is stamped with its registry
    /// id (see [`registry::announce`]).
    pub fn for_experiment(info: &'static ExperimentInfo) -> Harness {
        registry::announce(info);
        Harness::new()
    }

    /// A harness under an explicit context (tests, library callers).
    pub fn with_ctx(ctx: ExperimentCtx) -> Harness {
        Harness {
            engine: Engine::new(ctx),
            scenarios: HashMap::new(),
            cache: HashMap::new(),
            session: PlanTelemetry::default(),
            cache_hits: 0,
            traces: Vec::new(),
        }
    }

    /// The ambient experiment context.
    pub fn ctx(&self) -> &ExperimentCtx {
        self.engine.ctx()
    }

    /// The RNG factory runs under the ambient seed use.
    pub fn factory(&self) -> RngFactory {
        RngFactory::new(self.ctx().master_seed)
    }

    /// The (cached) ambient-seed scenario for `kind`.
    pub fn scenario(&mut self, kind: ScenarioKind) -> &Scenario {
        let ctx = *self.engine.ctx();
        self.scenarios
            .entry(kind)
            .or_insert_with(|| Arc::new(ctx.scenario(kind, None)))
    }

    /// Runs one spec (or returns its cached result). For grids, prefer
    /// [`Harness::run_plan`], which fans out across all cores.
    pub fn run(&mut self, spec: RunSpec) -> &RunResult {
        let key = spec.cache_key(self.engine.ctx());
        if !self.cache.contains_key(&key) {
            let outcome = self.engine.run_plan(&ExperimentPlan::from(vec![spec]));
            self.session.absorb(&outcome.telemetry);
            self.traces.extend(outcome.traces.into_iter().flatten());
            let result = outcome.results.into_iter().next().expect("one result");
            self.cache.insert(key.clone(), Arc::new(result));
        } else {
            self.cache_hits += 1;
        }
        self.cache.get(&key).expect("just inserted")
    }

    /// Runs a whole plan through the engine, consulting the cache per
    /// spec. Results come back in plan order, bit-identical for any
    /// worker count.
    pub fn run_plan(&mut self, plan: ExperimentPlan) -> Vec<Arc<RunResult>> {
        let ctx = *self.engine.ctx();
        let keys: Vec<String> = plan.specs().iter().map(|s| s.cache_key(&ctx)).collect();

        // Dedup within the plan too: identical specs simulate once.
        let mut missing: Vec<(String, RunSpec)> = Vec::new();
        for (key, spec) in keys.iter().zip(plan.specs()) {
            if !self.cache.contains_key(key) && missing.iter().all(|(k, _)| k != key) {
                missing.push((key.clone(), spec.clone()));
            }
        }

        let hits = plan.len() - missing.len();
        self.cache_hits += hits;
        if !missing.is_empty() {
            let sub: ExperimentPlan = missing.iter().map(|(_, s)| s.clone()).collect();
            let outcome = self.engine.run_plan(&sub);
            let mut telemetry = outcome.telemetry;
            telemetry.cache_hits = hits;
            self.session.absorb(&telemetry);
            self.traces.extend(outcome.traces.into_iter().flatten());
            for ((key, _), result) in missing.into_iter().zip(outcome.results) {
                self.cache.insert(key, Arc::new(result));
            }
        }

        keys.iter()
            .map(|key| Arc::clone(self.cache.get(key).expect("all plan keys resolved")))
            .collect()
    }

    /// Session telemetry: every simulated run so far, plus cache counts.
    pub fn telemetry(&self) -> &PlanTelemetry {
        &self.session
    }

    /// Cache hits served so far.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Simulations actually executed so far.
    pub fn cache_misses(&self) -> usize {
        self.session.runs.len()
    }

    /// Traces recorded so far this session (non-empty only under
    /// `HCLOUD_TRACE=full`), in submission order.
    pub fn traces(&self) -> &[RunTrace] {
        &self.traces
    }

    /// Prints the session telemetry line for `name` to stderr (stderr so
    /// figure output on stdout stays byte-identical across worker
    /// counts).
    pub fn report(&self, name: &str) {
        eprintln!(
            "[{name}] engine: {} simulated, {} cached, {} worker(s); {:.2}s wall, {:.2}s simulation ({:.2}x); {} events",
            self.cache_misses(),
            self.cache_hits(),
            self.session.workers.max(1),
            self.session.wall.as_secs_f64(),
            self.session.cpu_time().as_secs_f64(),
            self.session.speedup(),
            self.session.total_events(),
        );
    }

    /// End-of-binary bookkeeping: flushes recorded traces to the flight
    /// recorder (`HCLOUD_TRACE=full`), prints the per-phase spans
    /// (`summary` and up) and the session telemetry line, and returns
    /// the exit code — nonzero when any artifact write failed.
    pub fn finish(&self, name: &str) -> ExitCode {
        if self.ctx().trace.records_events() {
            let recorder = FlightRecorder::default_dir();
            let mut written = 0usize;
            for trace in &self.traces {
                match recorder.write(&trace.meta, &trace.events) {
                    Ok(_) => written += 1,
                    Err(e) => artifacts::artifact_failure(
                        format!("write {}", recorder.path_for(&trace.meta).display()),
                        e,
                    ),
                }
            }
            if written > 0 {
                eprintln!(
                    "[{name}] (wrote {written} trace(s) under {})",
                    recorder.dir().display()
                );
            }
        }
        if self.ctx().trace.reports_spans() {
            eprintln!(
                "[{name}] phases: scenario-gen {:.2}s, sim {:.2}s, report {:.2}s",
                self.session.scenario_wall.as_secs_f64(),
                self.session.cpu_time().as_secs_f64(),
                artifacts::report_span().as_secs_f64(),
            );
            let profile = self.session.total_profile();
            if !profile.is_empty() {
                eprintln!("[{name}] profile: {}", profile.summary());
            }
        }
        self.report(name);
        artifacts::exit_code()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcloud::StrategyKind;

    fn fast_harness() -> Harness {
        Harness::with_ctx(ExperimentCtx::new(42).with_fast(true).with_jobs(2))
    }

    #[test]
    fn run_caches_identical_specs() {
        let mut h = fast_harness();
        let spec = RunSpec::of(ScenarioKind::Static, StrategyKind::StaticReserved);
        let a = h.run(spec.clone()).makespan;
        assert_eq!(h.cache_misses(), 1);
        assert_eq!(h.cache_hits(), 0);
        let b = h.run(spec).makespan;
        assert_eq!(a, b);
        assert_eq!(h.cache_misses(), 1);
        assert_eq!(h.cache_hits(), 1);
    }

    #[test]
    fn plan_results_come_back_in_plan_order_and_hit_cache() {
        let mut h = fast_harness();
        let strategies = [
            StrategyKind::StaticReserved,
            StrategyKind::OnDemandMixed,
            StrategyKind::HybridMixed,
        ];
        let plan: ExperimentPlan = strategies
            .iter()
            .map(|&s| RunSpec::of(ScenarioKind::Static, s))
            .collect();
        let results = h.run_plan(plan.clone());
        assert_eq!(results.len(), 3);
        for (&s, r) in strategies.iter().zip(&results) {
            assert_eq!(r.strategy, s);
        }
        assert_eq!(h.cache_misses(), 3);

        // Resubmitting is free and identical.
        let again = h.run_plan(plan);
        assert_eq!(h.cache_misses(), 3);
        assert_eq!(h.cache_hits(), 3);
        for (a, b) in results.iter().zip(&again) {
            assert_eq!(a.as_ref(), b.as_ref());
        }
    }

    #[test]
    fn plan_dedups_identical_specs() {
        let mut h = fast_harness();
        let spec = RunSpec::of(ScenarioKind::Static, StrategyKind::OnDemandFull);
        let results = h.run_plan(ExperimentPlan::from(vec![spec.clone(), spec]));
        assert_eq!(results.len(), 2);
        assert_eq!(h.cache_misses(), 1);
        assert_eq!(results[0].as_ref(), results[1].as_ref());
    }
}
