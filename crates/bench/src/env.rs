//! Typed reader for the ambient `HCLOUD_*` experiment variables.
//!
//! Every bench binary and the CI smoke jobs are steered by eight
//! environment variables — `HCLOUD_SEED`, `HCLOUD_FAST`, `HCLOUD_JOBS`,
//! `HCLOUD_TRACE`, `HCLOUD_FAULTS`, `HCLOUD_AUDIT`, `HCLOUD_QUEUE`,
//! `HCLOUD_STRATEGY`.
//! [`EnvOpts`] is their one typed home: each variable is parsed exactly
//! once, and a malformed value is a hard error naming the variable, the
//! offending value, and what was expected — never a silent fallback to a
//! default the user did not ask for.

use hcloud::{StrategyId, StrategyRegistry};
use hcloud_audit::AuditMode;
use hcloud_faults::FaultPlanId;
use hcloud_sim::event::QueueKind;
use hcloud_telemetry::TraceMode;

/// The eight ambient experiment variables, parsed and typed.
///
/// [`crate::ExperimentCtx`] is built from this; binaries that need only
/// the raw knobs (e.g. a perf harness that sizes its own scenario) can
/// read [`EnvOpts`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvOpts {
    /// `HCLOUD_SEED` (default 42): the master seed every ambient-seeded
    /// run derives from.
    pub seed: u64,
    /// `HCLOUD_FAST=1`: shrink scenarios for smoke runs.
    pub fast: bool,
    /// `HCLOUD_JOBS`: explicit worker count (1 = sequential); `None`
    /// uses `std::thread::available_parallelism`.
    pub jobs: Option<usize>,
    /// `HCLOUD_TRACE`: `off` (default), `summary` or `full`.
    pub trace: TraceMode,
    /// `HCLOUD_FAULTS`: `off` (default) or a built-in fault-plan name.
    pub faults: FaultPlanId,
    /// `HCLOUD_AUDIT`: `off` (default), `final` or `strict`.
    pub audit: AuditMode,
    /// `HCLOUD_QUEUE`: `wheel` (timing wheel, default) or `heap`.
    pub queue: QueueKind,
    /// `HCLOUD_STRATEGY`: focus the run on one registered strategy
    /// (registry id or short name); `None` runs each binary's full
    /// strategy set.
    pub strategy: Option<StrategyId>,
}

impl Default for EnvOpts {
    fn default() -> Self {
        EnvOpts {
            seed: 42,
            fast: false,
            jobs: None,
            trace: TraceMode::Off,
            faults: FaultPlanId::Off,
            audit: AuditMode::Off,
            queue: QueueKind::Wheel,
            strategy: None,
        }
    }
}

impl EnvOpts {
    /// Parses the eight ambient variables from their raw string values.
    /// Malformed values are an error with a message naming the variable,
    /// the offending value, and what was expected.
    #[allow(clippy::too_many_arguments)]
    pub fn parse(
        seed: Option<&str>,
        fast: Option<&str>,
        jobs: Option<&str>,
        trace: Option<&str>,
        faults: Option<&str>,
        audit: Option<&str>,
        queue: Option<&str>,
        strategy: Option<&str>,
    ) -> Result<Self, String> {
        let seed = match seed {
            None => 42,
            Some(s) => s.trim().parse::<u64>().map_err(|_| {
                format!("invalid HCLOUD_SEED {s:?}: expected an unsigned 64-bit integer")
            })?,
        };
        let fast = match fast {
            None | Some("0") => false,
            Some("1") => true,
            Some(s) => {
                return Err(format!(
                    "invalid HCLOUD_FAST {s:?}: expected 1 (fast smoke mode) or 0"
                ))
            }
        };
        let jobs = match jobs {
            None => None,
            Some(s) => match s.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Some(n),
                _ => {
                    return Err(format!(
                        "invalid HCLOUD_JOBS {s:?}: expected a worker count >= 1"
                    ))
                }
            },
        };
        let trace = TraceMode::parse(trace)?;
        let faults = FaultPlanId::parse(faults)?;
        let audit = AuditMode::parse(audit)?;
        let queue = QueueKind::parse(queue)?;
        let strategy = match strategy {
            None => None,
            Some(s) => Some(s.trim().parse::<StrategyId>().map_err(|_| {
                format!(
                    "invalid HCLOUD_STRATEGY {s:?}: expected a registered strategy id or \
                     short name ({})",
                    StrategyRegistry::builtin().ids().join(", ")
                )
            })?),
        };
        Ok(EnvOpts {
            seed,
            fast,
            jobs,
            trace,
            faults,
            audit,
            queue,
            strategy,
        })
    }

    /// Reads the eight `HCLOUD_*` variables from the process environment.
    pub fn from_env() -> Result<Self, String> {
        let var = |name: &str| std::env::var(name).ok();
        Self::parse(
            var("HCLOUD_SEED").as_deref(),
            var("HCLOUD_FAST").as_deref(),
            var("HCLOUD_JOBS").as_deref(),
            var("HCLOUD_TRACE").as_deref(),
            var("HCLOUD_FAULTS").as_deref(),
            var("HCLOUD_AUDIT").as_deref(),
            var("HCLOUD_QUEUE").as_deref(),
            var("HCLOUD_STRATEGY").as_deref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Which of the eight variables a table row exercises.
    #[derive(Clone, Copy)]
    enum Var {
        Seed,
        Fast,
        Jobs,
        Trace,
        Faults,
        Audit,
        Queue,
        Strategy,
    }

    fn parse_one(var: Var, value: &str) -> Result<EnvOpts, String> {
        let v = Some(value);
        match var {
            Var::Seed => EnvOpts::parse(v, None, None, None, None, None, None, None),
            Var::Fast => EnvOpts::parse(None, v, None, None, None, None, None, None),
            Var::Jobs => EnvOpts::parse(None, None, v, None, None, None, None, None),
            Var::Trace => EnvOpts::parse(None, None, None, v, None, None, None, None),
            Var::Faults => EnvOpts::parse(None, None, None, None, v, None, None, None),
            Var::Audit => EnvOpts::parse(None, None, None, None, None, v, None, None),
            Var::Queue => EnvOpts::parse(None, None, None, None, None, None, v, None),
            Var::Strategy => EnvOpts::parse(None, None, None, None, None, None, None, v),
        }
    }

    #[test]
    fn table_of_valid_and_malformed_values() {
        // (variable, raw value, Ok(check) | Err(expected substrings)).
        type Check = fn(&EnvOpts) -> bool;
        let ok: Vec<(Var, &str, Check)> = vec![
            (Var::Seed, "7", |o| o.seed == 7),
            (Var::Seed, " 123 ", |o| o.seed == 123),
            (Var::Fast, "1", |o| o.fast),
            (Var::Fast, "0", |o| !o.fast),
            (Var::Jobs, "1", |o| o.jobs == Some(1)),
            (Var::Jobs, "8", |o| o.jobs == Some(8)),
            (Var::Trace, "off", |o| o.trace == TraceMode::Off),
            (Var::Trace, "summary", |o| o.trace == TraceMode::Summary),
            (Var::Trace, "full", |o| o.trace == TraceMode::Full),
            (Var::Faults, "off", |o| o.faults == FaultPlanId::Off),
            (Var::Faults, "full-chaos", |o| {
                o.faults == FaultPlanId::FullChaos
            }),
            (Var::Audit, "off", |o| o.audit == AuditMode::Off),
            (Var::Audit, "final", |o| o.audit == AuditMode::Final),
            (Var::Audit, "strict", |o| o.audit == AuditMode::Strict),
            (Var::Queue, "wheel", |o| o.queue == QueueKind::Wheel),
            (Var::Queue, "heap", |o| o.queue == QueueKind::Heap),
            (Var::Strategy, "hybrid-mixed", |o| {
                o.strategy.map(|s| s.as_str()) == Some("hybrid-mixed")
            }),
            (Var::Strategy, "HM", |o| {
                o.strategy.map(|s| s.as_str()) == Some("hybrid-mixed")
            }),
            (Var::Strategy, "reservation-autoscale", |o| {
                o.strategy.map(|s| s.as_str()) == Some("reservation-autoscale")
            }),
            (Var::Strategy, "qc", |o| {
                o.strategy.map(|s| s.as_str()) == Some("queueing-capacity")
            }),
        ];
        for (var, value, check) in ok {
            let opts = parse_one(var, value)
                .unwrap_or_else(|e| panic!("{value:?} should parse, got: {e}"));
            assert!(check(&opts), "{value:?} parsed to the wrong value");
        }

        let bad: Vec<(Var, &str, &[&str])> = vec![
            (Var::Seed, "banana", &["HCLOUD_SEED", "banana"]),
            (Var::Seed, "-1", &["HCLOUD_SEED", "-1"]),
            (Var::Fast, "yes", &["HCLOUD_FAST", "yes"]),
            (Var::Fast, "2", &["HCLOUD_FAST", "2"]),
            (Var::Jobs, "0", &["HCLOUD_JOBS", "0"]),
            (Var::Jobs, "many", &["HCLOUD_JOBS", "many"]),
            (Var::Trace, "loud", &["HCLOUD_TRACE", "loud"]),
            (Var::Faults, "mayhem", &["HCLOUD_FAULTS", "mayhem"]),
            (Var::Audit, "paranoid", &["HCLOUD_AUDIT", "paranoid"]),
            (Var::Queue, "stack", &["HCLOUD_QUEUE", "stack"]),
            (Var::Queue, "Wheel", &["HCLOUD_QUEUE", "Wheel"]),
            (
                Var::Strategy,
                "bogus",
                &["HCLOUD_STRATEGY", "bogus", "queueing-capacity"],
            ),
        ];
        for (var, value, needles) in bad {
            let e =
                parse_one(var, value).expect_err(&format!("{value:?} should be rejected loudly"));
            for needle in needles {
                assert!(e.contains(needle), "error {e:?} should mention {needle:?}");
            }
        }
    }

    #[test]
    fn unset_environment_is_all_defaults() {
        let opts = EnvOpts::parse(None, None, None, None, None, None, None, None).unwrap();
        assert_eq!(opts, EnvOpts::default());
        assert_eq!(opts.strategy, None);
    }
}
