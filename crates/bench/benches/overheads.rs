//! Criterion micro-benchmarks for HCloud's decision-path overheads
//! (Section 5.2) and hot simulation primitives.
//!
//! The paper reports classification at ~20 ms and all provisioning
//! decisions under 20 ms — three orders of magnitude below instance
//! spin-up. These benches verify our implementations sit comfortably
//! inside those budgets.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hcloud::dynamic::DynamicLimits;
use hcloud::mapping::{MappingContext, MappingPolicy};
use hcloud::monitor::QualityMonitor;
use hcloud::queue_estimator::QueueEstimator;
use hcloud_cloud::InstanceType;
use hcloud_interference::{resource_quality, ResourceVector, SlowdownModel};
use hcloud_quasar::{ProfilingEnvironment, QuasarConfig, QuasarEngine};
use hcloud_sim::event::EventQueue;
use hcloud_sim::rng::{RngFactory, SimRng};
use hcloud_sim::{SimDuration, SimTime};
use hcloud_workloads::{AppClass, JobId, JobKind, JobSpec};

fn job() -> JobSpec {
    let mut rng = SimRng::from_seed_u64(5);
    JobSpec {
        id: JobId(1),
        class: AppClass::Memcached,
        arrival: SimTime::ZERO,
        kind: JobKind::Batch {
            work_core_secs: 900.0,
        },
        cores: 4,
        sensitivity: AppClass::Memcached.sample_sensitivity(&mut rng),
    }
}

fn bench_classification(c: &mut Criterion) {
    let factory = RngFactory::new(11);
    let mut engine = QuasarEngine::new(QuasarConfig::default(), &factory);
    let env = ProfilingEnvironment::clean();
    let j = job();
    c.bench_function("quasar_profile_and_classify", |b| {
        b.iter(|| engine.estimate(&j, &env))
    });

    c.bench_function("quasar_engine_training", |b| {
        b.iter_batched(
            || QuasarConfig {
                corpus_size: 60,
                epochs: 30,
                ..QuasarConfig::default()
            },
            |config| QuasarEngine::new(config, &factory),
            BatchSize::SmallInput,
        )
    });
}

fn bench_decisions(c: &mut Criterion) {
    let monitor = QualityMonitor::default();
    let limits = DynamicLimits::default();
    let mut estimator = QueueEstimator::default();
    for k in 0..100u64 {
        estimator.record_release(4, SimTime::from_secs(k));
    }
    let j = job();
    let mut rng = SimRng::from_seed_u64(3);
    c.bench_function("dynamic_mapping_decision", |b| {
        b.iter(|| {
            let ctx = MappingContext {
                reserved_utilization: 0.72,
                job_quality: j.quality_requirement(),
                od_itype: InstanceType::standard(4),
                job_cores: 4,
                queue_len: 3,
                expected_spinup_large: SimDuration::from_secs(18),
                monitor: &monitor,
                limits: &limits,
                queue_estimator: &estimator,
                now: SimTime::from_secs(100),
            };
            MappingPolicy::Dynamic.decide(&ctx, &mut rng)
        })
    });

    let sensitivity = job().sensitivity;
    c.bench_function("resource_quality_encoding", |b| {
        b.iter(|| resource_quality(&sensitivity))
    });

    let model = SlowdownModel::default();
    let pressure = ResourceVector::uniform(0.35);
    c.bench_function("slowdown_evaluation", |b| {
        b.iter(|| model.slowdown(&sensitivity, &pressure))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_micros((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_classification,
    bench_decisions,
    bench_event_queue
);
criterion_main!(benches);
