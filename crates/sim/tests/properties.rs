//! Property-based tests for the simulation substrate.

use hcloud_sim::dist::{Dist, Sample};
use hcloud_sim::event::{EventQueue, EventQueueApi, EventToken, HeapEventQueue};
use hcloud_sim::rng::{RngFactory, SimRng};
use hcloud_sim::series::StepSeries;
use hcloud_sim::slot::{SlotKey, SlotMap};
use hcloud_sim::stats::{percentile, percentile_sorted, Boxplot, Cdf, OnlineStats, QuantileSet};
use hcloud_sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---------------------------------------------------------------
    // Event queue
    // ---------------------------------------------------------------

    /// Pops come out in (time, insertion) order — exactly a stable sort.
    /// Pinned for both the timing wheel and the retained heap reference.
    #[test]
    fn event_queue_is_a_stable_sort(times in prop::collection::vec(0u64..1000, 1..200)) {
        fn check<Q: EventQueueApi<usize>>(times: &[u64]) -> Result<(), TestCaseError> {
            let mut q = Q::default();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_secs(t), i);
            }
            let mut reference: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            reference.sort(); // stable: ties keep insertion order
            let popped: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
                .map(|(t, i)| (t.as_micros() / 1_000_000, i))
                .collect();
            prop_assert_eq!(popped, reference);
            Ok(())
        }
        check::<EventQueue<usize>>(&times)?;
        check::<HeapEventQueue<usize>>(&times)?;
    }

    /// The clock never runs backwards regardless of interleaving.
    #[test]
    fn event_queue_clock_is_monotone(ops in prop::collection::vec((0u64..500, proptest::bool::ANY), 1..100)) {
        fn check<Q: EventQueueApi<()>>(ops: &[(u64, bool)]) -> Result<(), TestCaseError> {
            let mut q = Q::default();
            let mut last = SimTime::ZERO;
            for &(offset, pop) in ops {
                q.schedule(q.now() + SimDuration::from_secs(offset), ());
                if pop {
                    if let Some((t, _)) = q.pop() {
                        prop_assert!(t >= last);
                        last = t;
                    }
                }
            }
            Ok(())
        }
        check::<EventQueue<()>>(&ops)?;
        check::<HeapEventQueue<()>>(&ops)?;
    }

    /// Differential test: the timing wheel and the heap reference agree on
    /// every observable — pop order, cancel outcomes, clock, depth
    /// telemetry — under random schedule/pop/cancel interleavings.
    #[test]
    fn wheel_matches_heap_on_random_interleavings(
        ops in prop::collection::vec((0u8..4, 0u64..2000, any::<u16>()), 1..300),
    ) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut tokens: Vec<(EventToken, EventToken)> = Vec::new();
        let mut payload = 0u64;
        for (op, offset, pick) in ops {
            match op {
                // Schedule (twice as likely as the other ops) — offsets
                // are relative to the current clock, occasionally zero to
                // exercise the same-instant FIFO path.
                0 | 1 => {
                    let at = wheel.now() + SimDuration::from_micros(offset * offset);
                    let tw = wheel.schedule(at, payload);
                    let th = heap.schedule(at, payload);
                    tokens.push((tw, th));
                    payload += 1;
                }
                2 => {
                    prop_assert_eq!(wheel.pop(), heap.pop());
                }
                _ if !tokens.is_empty() => {
                    let (tw, th) = tokens[pick as usize % tokens.len()];
                    prop_assert_eq!(wheel.cancel(tw), heap.cancel(th));
                }
                _ => {}
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.now(), heap.now());
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            prop_assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
            prop_assert_eq!(wheel.max_depth(), heap.max_depth());
        }
        // Drain both to the end: remaining order must match exactly.
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }

    /// Differential test for the batch API: draining same-timestamp
    /// batches yields identical slices and identical depth accounting on
    /// both implementations.
    #[test]
    fn wheel_matches_heap_on_batch_drains(
        times in prop::collection::vec(0u64..50, 1..200),
    ) {
        let mut wheel: EventQueue<usize> = EventQueue::new();
        let mut heap: HeapEventQueue<usize> = HeapEventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            wheel.schedule(SimTime::from_secs(t), i);
            heap.schedule(SimTime::from_secs(t), i);
        }
        let (mut wb, mut hb) = (Vec::new(), Vec::new());
        loop {
            let (wt, ht) = (wheel.drain_next_batch(&mut wb), heap.drain_next_batch(&mut hb));
            prop_assert_eq!(wt, ht);
            prop_assert_eq!(&wb, &hb);
            if wt.is_none() {
                break;
            }
            for _ in 0..wb.len() {
                prop_assert_eq!(wheel.len(), heap.len());
                wheel.ack();
                heap.ack();
            }
        }
        prop_assert!(wheel.is_empty() && heap.is_empty());
    }

    // ---------------------------------------------------------------
    // RNG
    // ---------------------------------------------------------------

    /// Named streams are reproducible and independent of creation order.
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), name in "[a-z]{1,12}") {
        use rand::RngCore;
        let f = RngFactory::new(seed);
        let mut a = f.stream(&name);
        let _ = f.stream("interloper");
        let mut b = f.stream(&name);
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    // ---------------------------------------------------------------
    // Distributions
    // ---------------------------------------------------------------

    /// Samples from positive-support distributions are positive and
    /// finite.
    #[test]
    fn positive_distributions_stay_positive(seed in any::<u64>(), mean in 0.001f64..1000.0) {
        use rand::SeedableRng;
        let mut rng = SimRng::seed_from_u64(seed);
        for d in [Dist::exponential(mean), Dist::log_normal_mean(mean, 0.8)] {
            for _ in 0..50 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite() && x > 0.0, "sample {x} from {d:?}");
            }
        }
    }

    // ---------------------------------------------------------------
    // Statistics
    // ---------------------------------------------------------------

    /// Percentiles are bounded by min/max and monotone in p.
    #[test]
    fn percentile_bounds_and_monotonicity(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut last = min;
        for p in [0.0, 5.0, 25.0, 50.0, 75.0, 95.0, 100.0] {
            let v = percentile(&values, p).expect("non-empty");
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
            prop_assert!(v >= last - 1e-9, "percentile not monotone");
            last = v;
        }
    }

    /// Boxplot fields are ordered min ≤ p5 ≤ p25 ≤ p50 ≤ p75 ≤ p95 ≤ max.
    #[test]
    fn boxplot_fields_are_ordered(values in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let b = Boxplot::from_values(&values).expect("non-empty");
        prop_assert!(b.min <= b.p5 + 1e-9);
        prop_assert!(b.p5 <= b.p25 + 1e-9);
        prop_assert!(b.p25 <= b.p50 + 1e-9);
        prop_assert!(b.p50 <= b.p75 + 1e-9);
        prop_assert!(b.p75 <= b.p95 + 1e-9);
        prop_assert!(b.p95 <= b.max + 1e-9);
        prop_assert!(b.mean >= b.min - 1e-9 && b.mean <= b.max + 1e-9);
        prop_assert_eq!(b.count, values.len());
    }

    /// quantile(prob_le(x)) ≤ x and prob_le is within [0, 1].
    #[test]
    fn cdf_quantile_prob_consistency(values in prop::collection::vec(0.0f64..1e4, 1..100), x in 0.0f64..1e4) {
        let cdf = Cdf::from_values(&values).expect("non-empty");
        let p = cdf.prob_le(x);
        prop_assert!((0.0..=1.0).contains(&p));
        if p > 0.0 {
            prop_assert!(cdf.quantile(p) <= x + 1e-9);
        }
    }

    /// Merging online stats equals feeding everything sequentially.
    #[test]
    fn online_stats_merge_is_concatenation(
        a in prop::collection::vec(-100.0f64..100.0, 0..50),
        b in prop::collection::vec(-100.0f64..100.0, 0..50),
    ) {
        let mut whole = OnlineStats::new();
        for &v in a.iter().chain(b.iter()) {
            whole.record(v);
        }
        let mut left = OnlineStats::new();
        for &v in &a {
            left.record(v);
        }
        let mut right = OnlineStats::new();
        for &v in &b {
            right.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        match (left.mean(), whole.mean()) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
            (None, None) => {}
            _ => prop_assert!(false, "mean presence mismatch"),
        }
    }

    // ---------------------------------------------------------------
    // Incremental containers (QuantileSet, SlotMap)
    // ---------------------------------------------------------------

    /// `QuantileSet` tracks a clone-and-sort reference bit-for-bit under
    /// any interleaving of inserts and removes: same length, same order
    /// statistics, same interpolated percentiles.
    #[test]
    fn quantile_set_matches_sorted_reference(
        ops in prop::collection::vec((proptest::bool::ANY, -1e3f64..1e3), 1..200),
    ) {
        let mut q = QuantileSet::new();
        let mut model: Vec<f64> = Vec::new();
        for (remove, v) in ops {
            if remove && !model.is_empty() {
                let idx = (v.to_bits() as usize) % model.len();
                let target = model.swap_remove(idx);
                prop_assert!(q.remove(target), "present in model, absent in set");
            } else {
                q.insert(v);
                model.push(v);
            }
        }
        prop_assert_eq!(q.len(), model.len());
        // A value never inserted cannot be removed.
        prop_assert!(!q.remove(1e9));
        let mut sorted = model.clone();
        sorted.sort_by(f64::total_cmp);
        for (k, &want) in sorted.iter().enumerate() {
            prop_assert_eq!(q.kth(k), Some(want));
        }
        prop_assert_eq!(q.kth(sorted.len()), None);
        for p in [0.0, 7.3, 25.0, 50.0, 66.6, 90.0, 95.0, 100.0] {
            let want = if sorted.is_empty() {
                None
            } else {
                Some(percentile_sorted(&sorted, p))
            };
            prop_assert_eq!(q.percentile(p), want, "p = {}", p);
        }
    }

    /// `SlotMap` agrees with a naive parallel-vector model: live handles
    /// read their value, retired handles fail typed with their own key,
    /// and iteration yields exactly the live slots in insertion order.
    #[test]
    fn slotmap_matches_naive_model(
        ops in prop::collection::vec((0u8..3, any::<u16>()), 1..150),
    ) {
        let mut m: SlotMap<u16> = SlotMap::new();
        let mut keys: Vec<SlotKey> = Vec::new();
        let mut live: Vec<bool> = Vec::new();
        let mut vals: Vec<u16> = Vec::new();
        for (op, x) in ops {
            match op {
                0 => {
                    let k = m.insert(x);
                    prop_assert_eq!(k.index(), keys.len(), "slots are append-only");
                    keys.push(k);
                    live.push(true);
                    vals.push(x);
                }
                1 if !keys.is_empty() => {
                    let i = x as usize % keys.len();
                    prop_assert_eq!(m.retire(keys[i]).is_ok(), live[i]);
                    live[i] = false;
                }
                _ if !keys.is_empty() => {
                    let i = x as usize % keys.len();
                    prop_assert_eq!(m.contains(keys[i]), live[i]);
                    match m.get(keys[i]) {
                        Ok(&v) => {
                            prop_assert!(live[i]);
                            prop_assert_eq!(v, vals[i]);
                        }
                        Err(stale) => {
                            prop_assert!(!live[i]);
                            prop_assert_eq!(stale.key, keys[i]);
                        }
                    }
                }
                _ => {}
            }
        }
        let got: Vec<(usize, u16)> = m.iter().map(|(k, &v)| (k.index(), v)).collect();
        let want: Vec<(usize, u16)> = (0..keys.len())
            .filter(|&i| live[i])
            .map(|i| (i, vals[i]))
            .collect();
        prop_assert_eq!(got, want, "iteration = live slots in insertion order");
        prop_assert_eq!(m.live_len(), live.iter().filter(|&&b| b).count());
        prop_assert_eq!(m.len(), keys.len());
    }

    // ---------------------------------------------------------------
    // Step series
    // ---------------------------------------------------------------

    /// The time-weighted mean lies within [min, max] of the window, and
    /// integrals are additive over adjacent windows.
    #[test]
    fn series_mean_bounds_and_integral_additivity(
        deltas in prop::collection::vec((1u64..100, -50.0f64..50.0), 1..50),
        split in 1u64..5000,
    ) {
        let mut s = StepSeries::new(0.0);
        let mut t = SimTime::ZERO;
        for (dt, v) in &deltas {
            t += SimDuration::from_secs(*dt);
            s.record(t, *v);
        }
        let end = t + SimDuration::from_secs(10);
        let mid = SimTime::from_secs(split.min(end.as_micros() / 1_000_000 - 1));
        let whole = s.integral(SimTime::ZERO, end);
        let parts = s.integral(SimTime::ZERO, mid) + s.integral(mid, end);
        prop_assert!((whole - parts).abs() < 1e-6 * whole.abs().max(1.0));

        let mean = s.time_weighted_mean(SimTime::ZERO, end).expect("window non-empty");
        let lo = s.min_over(SimTime::ZERO, end);
        let hi = s.max_over(SimTime::ZERO, end);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }
}
