//! Simulation time primitives.
//!
//! Simulation time is an absolute, monotonically non-decreasing instant
//! measured in integer microseconds since the start of the experiment.
//! Microsecond resolution comfortably covers both the shortest quantity the
//! HCloud paper reasons about (request tail latencies of a few hundred
//! microseconds) and the longest (multi-week cost projections in Figure 13:
//! 52 weeks ≈ 3.1 × 10^13 µs, far below `u64::MAX`).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulation time.
///
/// `SimTime` is a newtype over microseconds since simulation start. It is
/// totally ordered and cheap to copy.
///
/// ```
/// use hcloud_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_secs(90);
/// assert_eq!(t.as_secs_f64(), 90.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time.
///
/// Like [`SimTime`], a `SimDuration` is integer microseconds. Durations are
/// closed under addition and saturating subtraction, and may be scaled by
/// scalars for retention-time policies ("retain 10× spin-up overhead").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);

    /// The farthest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `secs` seconds after simulation start,
    /// saturating at [`SimTime::MAX`] instead of wrapping — long-horizon
    /// arithmetic (multi-week scenarios) must degrade to the sentinel,
    /// never to a small wrapped timestamp.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs.saturating_mul(1_000_000))
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Minutes since simulation start, as a float (the x-axis unit of the
    /// paper's scenario and trace figures).
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e6
    }

    /// Hours since simulation start, as a float (the unit of billing).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Time elapsed since `earlier`, or `None` when `earlier` is in the
    /// future — the checked sibling of [`SimTime::saturating_since`] for
    /// call sites where a clock inversion is a bug to surface, not a
    /// value to clamp silently.
    pub const fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        match self.0.checked_sub(earlier.0) {
            Some(d) => Some(SimDuration(d)),
            None => None,
        }
    }

    /// `self + d`, saturating at [`SimTime::MAX`] instead of overflowing.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The longest representable duration; useful as an "infinite retention"
    /// sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// A duration of `millis` milliseconds, saturating at
    /// [`SimDuration::MAX`].
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(1_000))
    }

    /// A duration of `secs` seconds, saturating at [`SimDuration::MAX`].
    ///
    /// All the unit constructors saturate rather than wrap: a wrapped
    /// duration silently turns a multi-week horizon into a short one,
    /// while the saturated sentinel fails loudly downstream.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000_000))
    }

    /// A duration of `mins` minutes, saturating at [`SimDuration::MAX`].
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins.saturating_mul(60_000_000))
    }

    /// A duration of `hours` hours, saturating at [`SimDuration::MAX`].
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours.saturating_mul(3_600_000_000))
    }

    /// A duration from fractional seconds, rounding to the nearest
    /// microsecond and clamping negatives to zero.
    ///
    /// This is the bridge from the continuous distributions in
    /// [`crate::dist`] back into discrete simulation time.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() {
            return SimDuration::MAX;
        }
        let micros = (secs * 1e6).round();
        if micros <= 0.0 {
            SimDuration::ZERO
        } else if micros >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(micros as u64)
        }
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e6
    }

    /// The duration in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600e6
    }

    /// `self - other`, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative float factor, saturating.
    ///
    /// Used by retention policies expressed as multiples of spin-up
    /// overhead (Section 3.2 of the paper).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60_000_000 {
            write!(f, "{:.2}min", self.as_mins_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(2500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_micros(), 12_500_000);
    }

    #[test]
    fn conversions_are_consistent() {
        let d = SimDuration::from_hours(2);
        assert_eq!(d.as_mins_f64(), 120.0);
        assert_eq!(d.as_secs_f64(), 7200.0);
        assert_eq!(d, SimDuration::from_mins(120));
        assert_eq!(d, SimDuration::from_secs(7200));
    }

    #[test]
    fn from_secs_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(1.0000004),
            SimDuration::from_micros(1_000_000)
        );
        assert_eq!(
            SimDuration::from_secs_f64(1.0000006),
            SimDuration::from_micros(1_000_001)
        );
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn checked_since_surfaces_inversions() {
        let early = SimTime::from_secs(5);
        let late = SimTime::from_secs(9);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_secs(4)));
        assert_eq!(late.checked_since(late), Some(SimDuration::ZERO));
        assert_eq!(early.checked_since(late), None, "inversion must be loud");
    }

    /// Regression (long-horizon sweep): the unit constructors multiplied
    /// unchecked, so absurd-but-reachable operands wrapped into *short*
    /// durations in release builds instead of saturating.
    #[test]
    fn unit_constructors_saturate_instead_of_wrapping() {
        assert_eq!(SimDuration::from_hours(u64::MAX), SimDuration::MAX);
        assert_eq!(SimDuration::from_mins(u64::MAX / 2), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs(u64::MAX / 100), SimDuration::MAX);
        assert_eq!(SimDuration::from_millis(u64::MAX / 10), SimDuration::MAX);
        assert_eq!(SimTime::from_secs(u64::MAX / 100), SimTime::MAX);
        // Multi-week horizons stay comfortably exact.
        assert_eq!(
            SimDuration::from_hours(500).as_micros(),
            500 * 3_600_000_000
        );
    }

    #[test]
    fn mul_f64_scales_retention() {
        let spin_up = SimDuration::from_secs(15);
        assert_eq!(spin_up.mul_f64(10.0), SimDuration::from_secs(150));
        assert_eq!(spin_up.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(15)), "15us");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_mins(90)), "90.00min");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime::from_secs(3), SimTime::ZERO, SimTime::from_secs(1)];
        v.sort();
        assert_eq!(
            v,
            vec![SimTime::ZERO, SimTime::from_secs(1), SimTime::from_secs(3)]
        );
    }
}
