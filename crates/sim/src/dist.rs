//! Probability distributions for the cloud and workload models.
//!
//! All distributions implement [`Sample`], producing `f64` values from any
//! [`rand::Rng`]. The set covers everything the HCloud models need:
//!
//! * [`Exponential`] — job inter-arrival times (1 s mean in all scenarios);
//! * [`Normal`] / [`TruncatedNormal`] — external-load fluctuation
//!   (±10% around 25% utilization) and profiling noise;
//! * [`LogNormal`] — instance spin-up overheads (mean 12–19 s with a heavy
//!   2-minute p95 tail, matching Section 3.2);
//! * [`Pareto`] — heavy-tailed batch job sizes;
//! * [`Empirical`] — resampling from measured values (used to model the
//!   per-instance-type performance variability of Figures 1–2);
//! * [`Constant`], [`Uniform`], [`Bernoulli`] — building blocks.
//!
//! [`Dist`] is a dynamic-dispatch-free enum over all of these so model
//! configuration structs can hold "some distribution" without generics.

use rand::Rng;

/// Types that can draw samples using an external RNG.
pub trait Sample {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// The distribution mean, used by sizing heuristics.
    fn mean(&self) -> f64;
}

/// A degenerate distribution that always returns the same value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Sample for Constant {
    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform bounds [{lo}, {hi})"
        );
        Uniform { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Exponential distribution with the given mean (rate = 1/mean).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with mean `mean`.
    ///
    /// # Panics
    /// Panics if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        Exponential { mean }
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF; 1 - u in (0, 1] avoids ln(0).
        let u: f64 = rng.gen::<f64>();
        -self.mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Normal distribution (Marsaglia polar method).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with mean `mu` and standard deviation
    /// `sigma`.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid normal parameters mu={mu} sigma={sigma}"
        );
        Normal { mu, sigma }
    }

    /// Draws one standard-normal variate.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u = rng.gen::<f64>() * 2.0 - 1.0;
            let v = rng.gen::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Sample for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * Normal::standard(rng)
    }
    fn mean(&self) -> f64 {
        self.mu
    }
}

/// Normal distribution clamped to `[lo, hi]` by rejection (with a clamp
/// fallback after a bounded number of rejections, so sampling always
/// terminates even for pathological bounds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    inner: Normal,
    lo: f64,
    hi: f64,
}

impl TruncatedNormal {
    /// Creates a truncated normal on `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(mu: f64, sigma: f64, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid truncation bounds [{lo}, {hi}]");
        TruncatedNormal {
            inner: Normal::new(mu, sigma),
            lo,
            hi,
        }
    }
}

impl Sample for TruncatedNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        for _ in 0..64 {
            let x = self.inner.sample(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        // Approximation: adequate for the near-symmetric truncations the
        // models use (load fluctuation bands).
        self.inner.mean().clamp(self.lo, self.hi)
    }
}

/// Log-normal distribution parameterized by the *target* mean and the
/// sigma of the underlying normal.
///
/// Spin-up overheads use this: heavy right tail, strictly positive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    mu: f64,
    /// Std-dev of the underlying normal.
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the parameters of the underlying normal.
    pub fn from_underlying(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid log-normal parameters"
        );
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal whose *resulting* distribution has the given
    /// mean, with shape `sigma` (std-dev of the underlying normal).
    ///
    /// # Panics
    /// Panics if `mean <= 0`.
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0, "log-normal mean must be positive, got {mean}");
        // E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
        LogNormal::from_underlying(mean.ln() - sigma * sigma / 2.0, sigma)
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Pareto (type I) distribution with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    /// Panics if `x_min <= 0` or `alpha <= 0`.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(
            x_min > 0.0 && alpha > 0.0,
            "invalid Pareto parameters x_min={x_min} alpha={alpha}"
        );
        Pareto { x_min, alpha }
    }
}

impl Sample for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>();
        self.x_min / (1.0 - u).max(f64::MIN_POSITIVE).powf(1.0 / self.alpha)
    }
    fn mean(&self) -> f64 {
        if self.alpha > 1.0 {
            self.alpha * self.x_min / (self.alpha - 1.0)
        } else {
            f64::INFINITY
        }
    }
}

/// Bernoulli distribution returning 1.0 with probability `p`, else 0.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution with success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "Bernoulli p must be in [0,1], got {p}"
        );
        Bernoulli { p }
    }
}

impl Sample for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < self.p {
            1.0
        } else {
            0.0
        }
    }
    fn mean(&self) -> f64 {
        self.p
    }
}

/// Empirical distribution: resamples uniformly from recorded values.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    values: Vec<f64>,
    mean: f64,
}

impl Empirical {
    /// Creates an empirical distribution from observed `values`.
    ///
    /// # Panics
    /// Panics if `values` is empty or contains non-finite entries.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(
            !values.is_empty(),
            "empirical distribution needs at least one value"
        );
        assert!(
            values.iter().all(|v| v.is_finite()),
            "empirical values must be finite"
        );
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        Empirical { values, mean }
    }

    /// The recorded values backing this distribution.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Sample for Empirical {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.values[rng.gen_range(0..self.values.len())]
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// A closed enum over every distribution, so configuration structs can hold
/// an arbitrary distribution without generics or boxing.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// See [`Constant`].
    Constant(Constant),
    /// See [`Uniform`].
    Uniform(Uniform),
    /// See [`Exponential`].
    Exponential(Exponential),
    /// See [`Normal`].
    Normal(Normal),
    /// See [`TruncatedNormal`].
    TruncatedNormal(TruncatedNormal),
    /// See [`LogNormal`].
    LogNormal(LogNormal),
    /// See [`Pareto`].
    Pareto(Pareto),
    /// See [`Bernoulli`].
    Bernoulli(Bernoulli),
    /// See [`Empirical`].
    Empirical(Empirical),
}

impl Dist {
    /// Shorthand for a constant.
    pub fn constant(v: f64) -> Dist {
        Dist::Constant(Constant(v))
    }
    /// Shorthand for a uniform on `[lo, hi)`.
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        Dist::Uniform(Uniform::new(lo, hi))
    }
    /// Shorthand for an exponential with the given mean.
    pub fn exponential(mean: f64) -> Dist {
        Dist::Exponential(Exponential::with_mean(mean))
    }
    /// Shorthand for a normal.
    pub fn normal(mu: f64, sigma: f64) -> Dist {
        Dist::Normal(Normal::new(mu, sigma))
    }
    /// Shorthand for a log-normal with the given resulting mean and shape.
    pub fn log_normal_mean(mean: f64, sigma: f64) -> Dist {
        Dist::LogNormal(LogNormal::with_mean(mean, sigma))
    }
}

impl Sample for Dist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Dist::Constant(d) => d.sample(rng),
            Dist::Uniform(d) => d.sample(rng),
            Dist::Exponential(d) => d.sample(rng),
            Dist::Normal(d) => d.sample(rng),
            Dist::TruncatedNormal(d) => d.sample(rng),
            Dist::LogNormal(d) => d.sample(rng),
            Dist::Pareto(d) => d.sample(rng),
            Dist::Bernoulli(d) => d.sample(rng),
            Dist::Empirical(d) => d.sample(rng),
        }
    }

    fn mean(&self) -> f64 {
        match self {
            Dist::Constant(d) => d.mean(),
            Dist::Uniform(d) => d.mean(),
            Dist::Exponential(d) => d.mean(),
            Dist::Normal(d) => d.mean(),
            Dist::TruncatedNormal(d) => d.mean(),
            Dist::LogNormal(d) => d.mean(),
            Dist::Pareto(d) => d.mean(),
            Dist::Bernoulli(d) => d.mean(),
            Dist::Empirical(d) => d.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn sample_mean<D: Sample>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::from_seed_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_matches_mean() {
        let d = Exponential::with_mean(2.0);
        let m = sample_mean(&d, 50_000, 1);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn normal_matches_moments() {
        let d = Normal::new(5.0, 2.0);
        let mut rng = SimRng::from_seed_u64(2);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn log_normal_with_mean_hits_target() {
        let d = LogNormal::with_mean(15.0, 0.9);
        let m = sample_mean(&d, 200_000, 3);
        assert!((m - 15.0).abs() < 0.5, "mean {m}");
        assert!(m > 0.0);
    }

    #[test]
    fn log_normal_samples_positive() {
        let d = LogNormal::with_mean(1.0, 2.0);
        let mut rng = SimRng::from_seed_u64(4);
        assert!((0..1000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let d = TruncatedNormal::new(0.25, 0.1, 0.15, 0.35);
        let mut rng = SimRng::from_seed_u64(5);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((0.15..=0.35).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn pareto_exceeds_scale_and_matches_mean() {
        let d = Pareto::new(1.0, 3.0);
        let mut rng = SimRng::from_seed_u64(6);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 1.0);
        }
        let m = sample_mean(&d, 100_000, 7);
        assert!((m - 1.5).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn pareto_mean_infinite_for_small_alpha() {
        assert!(Pareto::new(1.0, 0.9).mean().is_infinite());
    }

    #[test]
    fn bernoulli_rate() {
        let d = Bernoulli::new(0.3);
        let m = sample_mean(&d, 50_000, 8);
        assert!((m - 0.3).abs() < 0.01, "rate {m}");
    }

    #[test]
    fn empirical_resamples_only_observed_values() {
        let d = Empirical::new(vec![1.0, 2.0, 4.0]);
        let mut rng = SimRng::from_seed_u64(9);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!(x == 1.0 || x == 2.0 || x == 4.0);
        }
        assert!((d.mean() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dist_enum_dispatches() {
        let d = Dist::exponential(1.0);
        assert!((d.mean() - 1.0).abs() < 1e-12);
        let m = sample_mean(&d, 20_000, 10);
        assert!((m - 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "exponential mean must be positive")]
    fn exponential_rejects_bad_mean() {
        Exponential::with_mean(0.0);
    }

    #[test]
    #[should_panic(expected = "empirical distribution needs at least one value")]
    fn empirical_rejects_empty() {
        Empirical::new(vec![]);
    }

    #[test]
    fn uniform_degenerate_interval_is_constant() {
        let d = Uniform::new(3.0, 3.0);
        let mut rng = SimRng::from_seed_u64(11);
        assert_eq!(d.sample(&mut rng), 3.0);
    }
}
