//! Generational slot arena for typed, stale-checked handles.
//!
//! [`SlotMap`] is an append-only arena: every insert occupies a fresh
//! slot, and slots are **never reused**, so a [`SlotKey`]'s index is a
//! stable, dense identifier for the lifetime of the map (callers may
//! safely expose `key.index()` in telemetry). Retiring a slot bumps its
//! generation; any handle issued before the retirement then fails every
//! access with the typed [`StaleSlot`] error instead of silently reading
//! another entry's data — the failure mode of raw `usize` indexing.
//!
//! Determinism: iteration visits live slots in insertion (index) order,
//! and nothing here depends on addresses or hashing, so the arena is safe
//! to use on simulation hot paths that must replay bit-identically.

use std::fmt;

/// A handle into a [`SlotMap`]: slot index plus the generation it was
/// issued at. Ordering is by index (generations never collide on a live
/// key), so keys can serve as deterministic `BTreeSet`/`BTreeMap` keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotKey {
    index: u32,
    generation: u32,
}

impl SlotKey {
    /// The smallest possible key — a range endpoint for ordered-index
    /// scans, never a live handle.
    pub const MIN: SlotKey = SlotKey {
        index: 0,
        generation: 0,
    };
    /// The largest possible key — the other range endpoint.
    pub const MAX: SlotKey = SlotKey {
        index: u32::MAX,
        generation: u32::MAX,
    };

    /// The arena position this key points at. Stable for the lifetime of
    /// the map (slots are never reused), even after the slot is retired.
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The generation this key was issued at.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// Typed error for a handle whose slot has since been retired (or that
/// belongs to a different map).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleSlot {
    /// The offending key.
    pub key: SlotKey,
}

impl fmt::Display for StaleSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stale slot handle: index {} generation {}",
            self.key.index, self.key.generation
        )
    }
}

impl std::error::Error for StaleSlot {}

#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    live: bool,
    value: T,
}

/// Append-only generational arena; see the module docs.
#[derive(Debug, Clone)]
pub struct SlotMap<T> {
    slots: Vec<Slot<T>>,
    live: usize,
}

impl<T> Default for SlotMap<T> {
    fn default() -> Self {
        SlotMap::new()
    }
}

impl<T> SlotMap<T> {
    /// An empty arena.
    pub fn new() -> Self {
        SlotMap {
            slots: Vec::new(),
            live: 0,
        }
    }

    /// Total slots ever created (live + retired). Because slots are never
    /// reused this equals the number of `insert` calls.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot was ever created.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of live (non-retired) slots.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Inserts `value` into a fresh slot and returns its handle.
    ///
    /// # Panics
    /// Panics if the arena would exceed `u32::MAX` slots.
    pub fn insert(&mut self, value: T) -> SlotKey {
        let index = u32::try_from(self.slots.len()).expect("slot arena overflow");
        self.slots.push(Slot {
            generation: 0,
            live: true,
            value,
        });
        self.live += 1;
        SlotKey {
            index,
            generation: 0,
        }
    }

    /// True when `key` still points at a live slot.
    pub fn contains(&self, key: SlotKey) -> bool {
        self.slot(key).is_some()
    }

    /// The value behind `key`, or [`StaleSlot`] if it was retired.
    pub fn get(&self, key: SlotKey) -> Result<&T, StaleSlot> {
        self.slot(key).map(|s| &s.value).ok_or(StaleSlot { key })
    }

    /// Mutable access to the value behind `key`.
    pub fn get_mut(&mut self, key: SlotKey) -> Result<&mut T, StaleSlot> {
        match self.slots.get_mut(key.index()) {
            Some(s) if s.live && s.generation == key.generation => Ok(&mut s.value),
            _ => Err(StaleSlot { key }),
        }
    }

    /// Retires the slot behind `key`: the value stays in the arena (index
    /// stability) but every outstanding handle to it, including `key`,
    /// becomes stale.
    pub fn retire(&mut self, key: SlotKey) -> Result<(), StaleSlot> {
        match self.slots.get_mut(key.index()) {
            Some(s) if s.live && s.generation == key.generation => {
                s.live = false;
                s.generation = s.generation.wrapping_add(1);
                self.live -= 1;
                Ok(())
            }
            _ => Err(StaleSlot { key }),
        }
    }

    /// Live entries in insertion (index) order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotKey, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live)
            .map(|(i, s)| {
                let key = SlotKey {
                    index: i as u32,
                    generation: s.generation,
                };
                (key, &s.value)
            })
    }

    fn slot(&self, key: SlotKey) -> Option<&Slot<T>> {
        self.slots
            .get(key.index())
            .filter(|s| s.live && s.generation == key.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get_roundtrips() {
        let mut m = SlotMap::new();
        let a = m.insert("a");
        let b = m.insert("b");
        assert_eq!(m.get(a), Ok(&"a"));
        assert_eq!(m.get(b), Ok(&"b"));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(m.len(), 2);
        assert_eq!(m.live_len(), 2);
    }

    #[test]
    fn retired_handles_fail_typed() {
        let mut m = SlotMap::new();
        let k = m.insert(7u32);
        assert!(m.retire(k).is_ok());
        assert_eq!(m.get(k), Err(StaleSlot { key: k }));
        assert!(m.get_mut(k).is_err());
        assert_eq!(m.retire(k), Err(StaleSlot { key: k }), "double retire");
        assert!(!m.contains(k));
        assert_eq!(m.len(), 1, "slot is kept, not reused");
        assert_eq!(m.live_len(), 0);
    }

    #[test]
    fn slots_are_never_reused() {
        let mut m = SlotMap::new();
        let a = m.insert(1);
        m.retire(a).unwrap();
        let b = m.insert(2);
        assert_ne!(a.index(), b.index(), "new inserts take fresh slots");
        assert_eq!(m.get(b), Ok(&2));
        assert!(m.get(a).is_err());
    }

    #[test]
    fn iteration_is_in_index_order_over_live_slots() {
        let mut m = SlotMap::new();
        let keys: Vec<_> = (0..5).map(|v| m.insert(v)).collect();
        m.retire(keys[1]).unwrap();
        m.retire(keys[3]).unwrap();
        let seen: Vec<_> = m.iter().map(|(k, &v)| (k.index(), v)).collect();
        assert_eq!(seen, vec![(0, 0), (2, 2), (4, 4)]);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut m = SlotMap::new();
        let k = m.insert(10);
        *m.get_mut(k).unwrap() += 5;
        assert_eq!(m.get(k), Ok(&15));
    }

    #[test]
    fn foreign_out_of_bounds_key_is_stale_not_a_panic() {
        let m: SlotMap<i32> = SlotMap::new();
        assert!(m.get(SlotKey::MAX).is_err());
    }

    #[test]
    fn key_ordering_follows_index() {
        let mut m = SlotMap::new();
        let a = m.insert(());
        let b = m.insert(());
        assert!(a < b);
        assert!(SlotKey::MIN <= a && b <= SlotKey::MAX);
    }

    #[test]
    fn stale_slot_displays_both_coordinates() {
        let mut m = SlotMap::new();
        let k = m.insert(());
        m.retire(k).unwrap();
        let err = m.get(k).unwrap_err();
        assert!(err.to_string().contains("index 0"));
        assert!(err.to_string().contains("generation 0"));
    }
}
