//! Deterministic discrete-event queue.
//!
//! The HCloud scenario runner advances simulation time by repeatedly popping
//! the earliest pending event. Determinism requires a *stable* order among
//! events scheduled for the same instant: [`EventQueue`] breaks ties by
//! insertion sequence number, so two runs with identical inputs pop events
//! in identical order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: a payload scheduled for an instant.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // event surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking.
///
/// ```
/// use hcloud_sim::{SimTime, event::EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1), "b");
/// q.schedule(SimTime::from_secs(1), "c");
/// q.schedule(SimTime::ZERO, "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    max_depth: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            max_depth: 0,
        }
    }

    /// The current simulation instant: the timestamp of the most recently
    /// popped event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at instant `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; in debug
    /// builds it panics, in release builds the event fires "now" (at the
    /// current clock) to preserve monotonicity.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled an event in the past: {at} < {now}",
            at = at,
            now = self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
        self.max_depth = self.max_depth.max(self.heap.len());
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue went backwards in time");
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// The timestamp of the earliest pending event, if any, without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// High-water mark of pending events — how deep the queue ever got.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_monotonic() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        let (t1, _) = q.pop().unwrap();
        q.schedule(t1 + SimDuration::from_secs(1), "b");
        q.schedule(t1 + SimDuration::from_secs(3), "d");
        q.schedule(t1 + SimDuration::from_secs(2), "c");
        let mut last = t1;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn tracks_scheduling_statistics() {
        let mut q = EventQueue::new();
        assert_eq!(q.scheduled_total(), 0);
        assert_eq!(q.max_depth(), 0);
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.max_depth(), 2);
        q.pop();
        q.pop();
        q.schedule(SimTime::from_secs(3), "c");
        assert_eq!(q.scheduled_total(), 3, "total counts every schedule");
        assert_eq!(q.max_depth(), 2, "high-water mark survives drains");
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None.map(|x: (SimTime, ())| x));
        assert_eq!(q.peek_time(), None);
    }
}
