//! Deterministic discrete-event queue.
//!
//! The HCloud scenario runner advances simulation time by repeatedly popping
//! the earliest pending event. Determinism requires a *stable* order among
//! events scheduled for the same instant: both queue implementations break
//! ties by insertion sequence number, so two runs with identical inputs pop
//! events in identical order.
//!
//! Two interchangeable implementations live here, both behind
//! [`EventQueueApi`]:
//!
//! * [`EventQueue`] — the default: a hierarchical timing wheel
//!   ([`LEVELS`] levels × [`SLOTS`] slots of [`LEVEL_BITS`]-bit digits over
//!   the microsecond timestamp). Scheduling and serving are O(1) amortized
//!   regardless of how deep the queue gets, which is what lets fleet-scale
//!   scenarios (10⁵ instances, 10⁶ jobs) run without the `O(log n)` heap
//!   churn dominating.
//! * [`HeapEventQueue`] — the retained `BinaryHeap` reference
//!   implementation. The property suite runs both against the same stable
//!   sort reference, and a differential test drives them in lockstep over
//!   random schedule/pop/cancel interleavings.
//!
//! An event lives at the level of the highest [`LEVEL_BITS`]-bit digit in
//! which its timestamp differs from the current clock, in the slot named by
//! that digit. Events due exactly "now" sit in a dedicated FIFO. Serving
//! takes the lowest occupied level's lowest occupied slot (a bitmap scan):
//! level 0 buckets hold one exact timestamp and become the next batch
//! wholesale; higher-level buckets cascade — their earliest timestamp
//! becomes the new clock and every other member re-enters a lower level.
//! Ties are restored by sorting each served bucket by sequence number, so
//! the pop order is bit-identical to the heap's.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Bits per wheel level: each level indexes one 6-bit digit of the
/// microsecond timestamp.
pub const LEVEL_BITS: u32 = 6;
/// Slots per level (`2^LEVEL_BITS`).
pub const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels: `11 × 6 = 66` bits cover the full `u64` timestamp range.
pub const LEVELS: usize = 11;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;

/// Which event-queue implementation a run uses: the timing-wheel
/// [`EventQueue`] (default) or the reference [`HeapEventQueue`]. Parsed
/// from `HCLOUD_QUEUE` with the same loud-failure contract as the other
/// `HCLOUD_*` knobs; the two implementations are digest-identical, so
/// the knob trades only wall clock, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// The hierarchical timing wheel (default).
    Wheel,
    /// The retained `BinaryHeap` reference implementation.
    Heap,
}

impl QueueKind {
    /// Both implementations, wheel first (comparison benches iterate
    /// this).
    pub const ALL: [QueueKind; 2] = [QueueKind::Wheel, QueueKind::Heap];

    /// Stable display name, also the accepted `HCLOUD_QUEUE` spelling.
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::Wheel => "wheel",
            QueueKind::Heap => "heap",
        }
    }

    /// Parses an `HCLOUD_QUEUE` value: `wheel` (default when unset) or
    /// `heap`. Anything else is a hard error naming the variable, the
    /// offending value, and what was expected.
    pub fn parse(raw: Option<&str>) -> Result<Self, String> {
        match raw {
            None => Ok(QueueKind::Wheel),
            Some("wheel") => Ok(QueueKind::Wheel),
            Some("heap") => Ok(QueueKind::Heap),
            Some(s) => Err(format!(
                "invalid HCLOUD_QUEUE {s:?}: expected wheel (timing wheel, default) or heap"
            )),
        }
    }
}

/// A handle to a scheduled event, returned by [`EventSink::schedule`] and
/// accepted by [`EventQueueApi::cancel`]. Tokens are unique per queue for
/// the queue's whole lifetime, so a token for an already-served (or
/// already-cancelled) event is simply not found — cancellation can never
/// hit the wrong event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventToken(u64);

/// The write half of an event queue: anything that can accept scheduled
/// events. Scheduler hot paths take `&mut impl EventSink<Event>` so the
/// runner can drive them from either queue implementation.
pub trait EventSink<E> {
    /// Schedules `event` at instant `at`; returns a token for [`cancel`].
    ///
    /// Scheduling in the past is a logic error in the caller; in debug
    /// builds it panics, in release builds the event fires "now" (at the
    /// current clock) to preserve monotonicity.
    ///
    /// [`cancel`]: EventQueueApi::cancel
    fn schedule(&mut self, at: SimTime, event: E) -> EventToken;
}

/// The full event-queue contract shared by [`EventQueue`] (timing wheel)
/// and [`HeapEventQueue`] (reference heap). The runner is generic over
/// this trait, which is how the digest-identity benches prove the two
/// implementations byte-identical end to end.
pub trait EventQueueApi<E>: EventSink<E> + Default {
    /// The current simulation instant: the timestamp of the most recently
    /// popped event (or zero before any pop).
    fn now(&self) -> SimTime;
    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    fn pop(&mut self) -> Option<(SimTime, E)>;
    /// Removes a pending event by token. Returns `false` when the token's
    /// event already fired or was already cancelled. O(n) worst case —
    /// cancellation is an off-hot-path operation.
    fn cancel(&mut self, token: EventToken) -> bool;
    /// Drains every event due at the earliest pending timestamp into
    /// `buf`, in (time, insertion) order, advancing the clock to that
    /// timestamp. Returns the batch timestamp, or `None` when empty.
    ///
    /// Drained events count toward [`len`] until [`ack`]ed, so depth
    /// telemetry matches a pop-one-dispatch-one loop exactly.
    ///
    /// [`len`]: EventQueueApi::len
    /// [`ack`]: EventQueueApi::ack
    fn drain_next_batch(&mut self, buf: &mut Vec<E>) -> Option<SimTime>;
    /// Acknowledges one drained event as dispatched (see
    /// [`drain_next_batch`]).
    ///
    /// [`drain_next_batch`]: EventQueueApi::drain_next_batch
    fn ack(&mut self);
    /// The timestamp of the earliest pending event, if any, without
    /// popping.
    fn peek_time(&self) -> Option<SimTime>;
    /// Number of pending events (drained-but-unacked events included).
    fn len(&self) -> usize;
    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total number of events ever scheduled on this queue.
    fn scheduled_total(&self) -> u64;
    /// High-water mark of pending events — how deep the queue ever got.
    fn max_depth(&self) -> usize;
}

/// A pending event: a payload scheduled for an instant.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // event surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking, implemented
/// as a hierarchical timing wheel.
///
/// ```
/// use hcloud_sim::{SimTime, event::EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1), "b");
/// q.schedule(SimTime::from_secs(1), "c");
/// q.schedule(SimTime::ZERO, "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
///
/// Invariant: every wheel entry agrees with the clock on all digits above
/// its level, and its slot digit is strictly greater than the clock's
/// digit at that level. This makes lower levels strictly earlier than
/// higher ones, so serving scans levels bottom-up and slots by lowest set
/// bit.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Events due exactly at `now`, in insertion order.
    due: VecDeque<Scheduled<E>>,
    /// `LEVELS × SLOTS` buckets, row-major by level.
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Per-level slot-occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// Events in `due` + buckets.
    pending: usize,
    /// Events drained by `drain_next_batch` but not yet `ack`ed.
    outstanding: usize,
    /// Scratch buffer the served bucket is swapped into; retains its
    /// capacity across serves so the advance path stops allocating once
    /// the wheel is warm.
    serving: Vec<Scheduled<E>>,
    /// Scratch buffer for entries arriving exactly at the cascade target.
    arrived: Vec<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    max_depth: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            due: VecDeque::new(),
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            pending: 0,
            outstanding: 0,
            serving: Vec::new(),
            arrived: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            max_depth: 0,
        }
    }

    /// The current simulation instant: the timestamp of the most recently
    /// popped event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The wheel position for a future timestamp: the level of the highest
    /// digit differing from `now`, and that digit as the slot.
    fn level_slot(&self, at: SimTime) -> (usize, usize) {
        let d = at.as_micros() ^ self.now.as_micros();
        debug_assert!(d != 0, "level_slot is only defined for at != now");
        let level = ((63 - d.leading_zeros()) / LEVEL_BITS) as usize;
        let slot = ((at.as_micros() >> (level as u32 * LEVEL_BITS)) & SLOT_MASK) as usize;
        (level, slot)
    }

    /// Schedules `event` at instant `at`; returns a token for
    /// [`EventQueue::cancel`].
    ///
    /// Scheduling in the past is a logic error in the caller; in debug
    /// builds it panics, in release builds the event fires "now" (at the
    /// current clock) to preserve monotonicity.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventToken {
        debug_assert!(
            at >= self.now,
            "scheduled an event in the past: {at} < {now}",
            at = at,
            now = self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = Scheduled { at, seq, event };
        if at == self.now {
            // Sequence numbers only grow, so appending keeps `due` sorted.
            self.due.push_back(s);
        } else {
            let (level, slot) = self.level_slot(at);
            self.buckets[level * SLOTS + slot].push(s);
            self.occupied[level] |= 1 << slot;
        }
        self.pending += 1;
        self.max_depth = self.max_depth.max(self.len());
        EventToken(seq)
    }

    /// Serves the earliest occupied wheel position into `due`, advancing
    /// the clock. Caller guarantees `due` is empty and `pending > 0`.
    ///
    /// The served bucket is swapped into a reusable scratch buffer (and
    /// cascade arrivals into a second one) rather than moved out, so the
    /// steady state performs no allocation: capacities circulate between
    /// the scratch buffers and the buckets they serve.
    fn advance(&mut self) {
        debug_assert!(self.due.is_empty());
        for level in 0..LEVELS {
            if self.occupied[level] == 0 {
                continue;
            }
            let slot = self.occupied[level].trailing_zeros() as usize;
            debug_assert!(self.serving.is_empty());
            std::mem::swap(&mut self.buckets[level * SLOTS + slot], &mut self.serving);
            self.occupied[level] &= !(1u64 << slot);
            debug_assert!(!self.serving.is_empty(), "occupancy bit without entries");
            if level == 0 {
                // A level-0 bucket differs from `now` only in the digit it
                // is keyed by: every member shares one exact timestamp.
                let at = self.serving[0].at;
                debug_assert!(self.serving.iter().all(|s| s.at == at));
                debug_assert!(at > self.now, "event queue went backwards in time");
                self.now = at;
                // Cascades can interleave sequence numbers; restore FIFO.
                self.serving.sort_unstable_by_key(|s| s.seq);
                self.due.extend(self.serving.drain(..));
            } else {
                // Cascade: the bucket's earliest timestamp becomes the new
                // clock; everything later re-enters at a lower level.
                let target = self
                    .serving
                    .iter()
                    .map(|s| s.at)
                    .min()
                    .expect("bucket non-empty");
                debug_assert!(target > self.now, "event queue went backwards in time");
                self.now = target;
                let now_us = target.as_micros();
                debug_assert!(self.arrived.is_empty());
                for s in self.serving.drain(..) {
                    if s.at == target {
                        self.arrived.push(s);
                    } else {
                        // `level_slot` inlined against the new clock; the
                        // drain borrow keeps `&self` methods out of reach.
                        let d = s.at.as_micros() ^ now_us;
                        let l = ((63 - d.leading_zeros()) / LEVEL_BITS) as usize;
                        let sl =
                            ((s.at.as_micros() >> (l as u32 * LEVEL_BITS)) & SLOT_MASK) as usize;
                        debug_assert!(l <= level, "cascade must descend");
                        self.buckets[l * SLOTS + sl].push(s);
                        self.occupied[l] |= 1 << sl;
                    }
                }
                self.arrived.sort_unstable_by_key(|s| s.seq);
                self.due.extend(self.arrived.drain(..));
            }
            return;
        }
        unreachable!("advance called on an empty wheel");
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.due.is_empty() {
            if self.pending == 0 {
                return None;
            }
            self.advance();
        }
        let s = self.due.pop_front().expect("advance fills due");
        self.pending -= 1;
        Some((s.at, s.event))
    }

    /// Removes a pending event by token; see [`EventQueueApi::cancel`].
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if let Some(pos) = self.due.iter().position(|s| s.seq == token.0) {
            self.due.remove(pos);
            self.pending -= 1;
            return true;
        }
        for level in 0..LEVELS {
            let mut bits = self.occupied[level];
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let bucket = &mut self.buckets[level * SLOTS + slot];
                if let Some(pos) = bucket.iter().position(|s| s.seq == token.0) {
                    // Buckets are re-sorted at serve time, so order of the
                    // remaining entries does not matter.
                    bucket.swap_remove(pos);
                    if bucket.is_empty() {
                        self.occupied[level] &= !(1u64 << slot);
                    }
                    self.pending -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Drains the next same-timestamp batch; see
    /// [`EventQueueApi::drain_next_batch`].
    pub fn drain_next_batch(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        debug_assert_eq!(self.outstanding, 0, "previous batch not fully acked");
        buf.clear();
        if self.due.is_empty() {
            if self.pending == 0 {
                return None;
            }
            self.advance();
        }
        let n = self.due.len();
        buf.extend(self.due.drain(..).map(|s| s.event));
        self.pending -= n;
        self.outstanding += n;
        Some(self.now)
    }

    /// Acknowledges one drained event as dispatched; see
    /// [`EventQueueApi::ack`].
    pub fn ack(&mut self) {
        debug_assert!(self.outstanding > 0, "ack without a drained event");
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// The timestamp of the earliest pending event, if any, without popping.
    /// May scan one bucket (O of its size); not a hot-path operation.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(s) = self.due.front() {
            return Some(s.at);
        }
        for level in 0..LEVELS {
            if self.occupied[level] == 0 {
                continue;
            }
            let slot = self.occupied[level].trailing_zeros() as usize;
            return self.buckets[level * SLOTS + slot]
                .iter()
                .map(|s| s.at)
                .min();
        }
        None
    }

    /// Number of pending events (drained-but-unacked events included).
    pub fn len(&self) -> usize {
        self.pending + self.outstanding
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// High-water mark of pending events — how deep the queue ever got.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

impl<E> EventSink<E> for EventQueue<E> {
    fn schedule(&mut self, at: SimTime, event: E) -> EventToken {
        EventQueue::schedule(self, at, event)
    }
}

impl<E> EventQueueApi<E> for EventQueue<E> {
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn cancel(&mut self, token: EventToken) -> bool {
        EventQueue::cancel(self, token)
    }
    fn drain_next_batch(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        EventQueue::drain_next_batch(self, buf)
    }
    fn ack(&mut self) {
        EventQueue::ack(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn scheduled_total(&self) -> u64 {
        EventQueue::scheduled_total(self)
    }
    fn max_depth(&self) -> usize {
        EventQueue::max_depth(self)
    }
}

/// The retained `BinaryHeap` reference implementation of
/// [`EventQueueApi`]: the pre-timing-wheel queue, kept as the behavioural
/// oracle for the differential property tests and the heap-vs-wheel
/// digest-identity benches.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    outstanding: usize,
    next_seq: u64,
    now: SimTime,
    max_depth: usize,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            outstanding: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            max_depth: 0,
        }
    }

    /// See [`EventSink::schedule`].
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventToken {
        debug_assert!(
            at >= self.now,
            "scheduled an event in the past: {at} < {now}",
            at = at,
            now = self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
        self.max_depth = self.max_depth.max(self.len());
        EventToken(seq)
    }

    /// See [`EventQueueApi::pop`].
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue went backwards in time");
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// See [`EventQueueApi::cancel`]. O(n): rebuilds the heap without the
    /// cancelled entry.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        let before = entries.len();
        entries.retain(|s| s.seq != token.0);
        let found = entries.len() != before;
        self.heap = BinaryHeap::from(entries);
        found
    }

    /// See [`EventQueueApi::drain_next_batch`].
    pub fn drain_next_batch(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        debug_assert_eq!(self.outstanding, 0, "previous batch not fully acked");
        buf.clear();
        let (t, first) = self.pop()?;
        buf.push(first);
        while self.heap.peek().is_some_and(|s| s.at == t) {
            let s = self.heap.pop().expect("peeked");
            buf.push(s.event);
        }
        self.outstanding += buf.len();
        Some(t)
    }

    /// See [`EventQueueApi::ack`].
    pub fn ack(&mut self) {
        debug_assert!(self.outstanding > 0, "ack without a drained event");
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// See [`EventQueueApi::peek_time`].
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// See [`EventQueueApi::len`].
    pub fn len(&self) -> usize {
        self.heap.len() + self.outstanding
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// See [`EventQueueApi::scheduled_total`].
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// See [`EventQueueApi::max_depth`].
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// See [`EventQueueApi::now`].
    pub fn now(&self) -> SimTime {
        self.now
    }
}

impl<E> EventSink<E> for HeapEventQueue<E> {
    fn schedule(&mut self, at: SimTime, event: E) -> EventToken {
        HeapEventQueue::schedule(self, at, event)
    }
}

impl<E> EventQueueApi<E> for HeapEventQueue<E> {
    fn now(&self) -> SimTime {
        HeapEventQueue::now(self)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        HeapEventQueue::pop(self)
    }
    fn cancel(&mut self, token: EventToken) -> bool {
        HeapEventQueue::cancel(self, token)
    }
    fn drain_next_batch(&mut self, buf: &mut Vec<E>) -> Option<SimTime> {
        HeapEventQueue::drain_next_batch(self, buf)
    }
    fn ack(&mut self) {
        HeapEventQueue::ack(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        HeapEventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        HeapEventQueue::len(self)
    }
    fn scheduled_total(&self) -> u64 {
        HeapEventQueue::scheduled_total(self)
    }
    fn max_depth(&self) -> usize {
        HeapEventQueue::max_depth(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Runs `body` against both queue implementations, so every behaviour
    /// below is pinned for the wheel and the heap reference alike.
    fn on_both(body: impl Fn(&mut dyn DynQueue)) {
        body(&mut EventQueue::<i64>::new());
        body(&mut HeapEventQueue::<i64>::new());
    }

    /// Object-safe shim over `EventQueueApi<i64>` for the shared tests.
    trait DynQueue {
        fn schedule(&mut self, at: SimTime, e: i64) -> EventToken;
        fn pop(&mut self) -> Option<(SimTime, i64)>;
        fn cancel(&mut self, token: EventToken) -> bool;
        fn now(&self) -> SimTime;
        fn peek_time(&self) -> Option<SimTime>;
        fn len(&self) -> usize;
        fn is_empty(&self) -> bool;
        fn scheduled_total(&self) -> u64;
        fn max_depth(&self) -> usize;
        fn drain_next_batch(&mut self, buf: &mut Vec<i64>) -> Option<SimTime>;
        fn ack(&mut self);
    }

    impl<Q: EventQueueApi<i64>> DynQueue for Q {
        fn schedule(&mut self, at: SimTime, e: i64) -> EventToken {
            EventSink::schedule(self, at, e)
        }
        fn pop(&mut self) -> Option<(SimTime, i64)> {
            EventQueueApi::pop(self)
        }
        fn cancel(&mut self, token: EventToken) -> bool {
            EventQueueApi::cancel(self, token)
        }
        fn now(&self) -> SimTime {
            EventQueueApi::now(self)
        }
        fn peek_time(&self) -> Option<SimTime> {
            EventQueueApi::peek_time(self)
        }
        fn len(&self) -> usize {
            EventQueueApi::len(self)
        }
        fn is_empty(&self) -> bool {
            EventQueueApi::is_empty(self)
        }
        fn scheduled_total(&self) -> u64 {
            EventQueueApi::scheduled_total(self)
        }
        fn max_depth(&self) -> usize {
            EventQueueApi::max_depth(self)
        }
        fn drain_next_batch(&mut self, buf: &mut Vec<i64>) -> Option<SimTime> {
            EventQueueApi::drain_next_batch(self, buf)
        }
        fn ack(&mut self) {
            EventQueueApi::ack(self)
        }
    }

    #[test]
    fn pops_in_time_order() {
        on_both(|q| {
            q.schedule(SimTime::from_secs(3), 3);
            q.schedule(SimTime::from_secs(1), 1);
            q.schedule(SimTime::from_secs(2), 2);
            let order: Vec<i64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        on_both(|q| {
            let t = SimTime::from_secs(7);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<i64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn clock_advances_with_pops() {
        on_both(|q| {
            q.schedule(SimTime::from_secs(5), 0);
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_secs(5));
        });
    }

    #[test]
    fn peek_does_not_advance() {
        on_both(|q| {
            q.schedule(SimTime::from_secs(2), 0);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
            assert_eq!(q.now(), SimTime::ZERO);
            assert_eq!(q.len(), 1);
        });
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_monotonic() {
        on_both(|q| {
            q.schedule(SimTime::from_secs(1), 0);
            let (t1, _) = q.pop().unwrap();
            q.schedule(t1 + SimDuration::from_secs(1), 1);
            q.schedule(t1 + SimDuration::from_secs(3), 3);
            q.schedule(t1 + SimDuration::from_secs(2), 2);
            let mut last = t1;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
            }
        });
    }

    #[test]
    fn tracks_scheduling_statistics() {
        on_both(|q| {
            assert_eq!(q.scheduled_total(), 0);
            assert_eq!(q.max_depth(), 0);
            q.schedule(SimTime::from_secs(1), 1);
            q.schedule(SimTime::from_secs(2), 2);
            assert_eq!(q.max_depth(), 2);
            q.pop();
            q.pop();
            q.schedule(SimTime::from_secs(3), 3);
            assert_eq!(q.scheduled_total(), 3, "total counts every schedule");
            assert_eq!(q.max_depth(), 2, "high-water mark survives drains");
        });
    }

    #[test]
    fn empty_queue_behaviour() {
        on_both(|q| {
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
            assert_eq!(q.peek_time(), None);
        });
    }

    #[test]
    fn cancel_removes_exactly_the_tokened_event() {
        on_both(|q| {
            let t = SimTime::from_secs(2);
            let _a = q.schedule(t, 1);
            let b = q.schedule(t, 2);
            let _c = q.schedule(SimTime::from_secs(9), 3);
            assert!(q.cancel(b), "pending event cancels");
            assert!(!q.cancel(b), "second cancel finds nothing");
            assert_eq!(q.len(), 2);
            let order: Vec<i64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec![1, 3]);
        });
    }

    #[test]
    fn cancel_after_fire_is_a_no_op() {
        on_both(|q| {
            let a = q.schedule(SimTime::from_secs(1), 1);
            assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
            assert!(!q.cancel(a), "fired events cannot be cancelled");
        });
    }

    #[test]
    fn drain_serves_whole_timestamps_and_len_tracks_acks() {
        on_both(|q| {
            let t = SimTime::from_secs(4);
            q.schedule(t, 1);
            q.schedule(t, 2);
            q.schedule(SimTime::from_secs(9), 3);
            let mut buf = Vec::new();
            assert_eq!(q.drain_next_batch(&mut buf), Some(t));
            assert_eq!(buf, vec![1, 2]);
            assert_eq!(q.len(), 3, "drained events still count until acked");
            q.ack();
            assert_eq!(q.len(), 2, "ack mirrors a sequential pop");
            // Scheduling mid-batch lands the event in the next batch at
            // the same timestamp.
            q.schedule(t, 4);
            q.ack();
            assert_eq!(q.drain_next_batch(&mut buf), Some(t));
            assert_eq!(buf, vec![4]);
            q.ack();
            assert_eq!(q.drain_next_batch(&mut buf), Some(SimTime::from_secs(9)));
            assert_eq!(buf, vec![3]);
            q.ack();
            assert_eq!(q.drain_next_batch(&mut buf), None);
        });
    }

    #[test]
    fn wheel_cascades_across_levels() {
        // Timestamps chosen to span several 6-bit digit boundaries, so
        // serving exercises the cascade path repeatedly.
        let mut q = EventQueue::new();
        let times = [
            1u64,
            63,
            64,
            65,
            4095,
            4096,
            262_143,
            262_144,
            16_777_217,
            u64::from(u32::MAX),
            1 << 40,
            (1 << 40) + 1,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i as i64);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_micros())
            .collect();
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(popped, want);
    }
}
