//! Step-function time series for allocation, utilization and cost traces.
//!
//! The paper's trace figures (Figure 3 required cores; Figure 18 allocated
//! vs required cores; Figures 19–21 utilization) are all piecewise-constant
//! functions of time. [`StepSeries`] records the value changes and answers
//! point queries, time-weighted averages, and resampling onto a regular
//! grid for plotting.

use crate::time::{SimDuration, SimTime};

/// A piecewise-constant (right-continuous) time series.
///
/// The value at a time `t` is the value most recently recorded at or before
/// `t`; before the first record it is the `initial` value.
///
/// ```
/// use hcloud_sim::{SimTime, series::StepSeries};
///
/// let mut s = StepSeries::new(0.0);
/// s.record(SimTime::from_secs(10), 5.0);
/// s.record(SimTime::from_secs(20), 2.0);
/// assert_eq!(s.value_at(SimTime::from_secs(5)), 0.0);
/// assert_eq!(s.value_at(SimTime::from_secs(10)), 5.0);
/// assert_eq!(s.value_at(SimTime::from_secs(25)), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StepSeries {
    initial: f64,
    points: Vec<(SimTime, f64)>,
}

impl StepSeries {
    /// Creates a series whose value is `initial` until the first record.
    pub fn new(initial: f64) -> Self {
        StepSeries {
            initial,
            points: Vec::new(),
        }
    }

    /// Records that the value becomes `value` at instant `at`.
    ///
    /// Records must be appended in non-decreasing time order; a record at
    /// the same instant as the previous one overwrites it.
    ///
    /// # Panics
    /// Panics in debug builds if `at` precedes the last recorded instant.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&mut (last_t, ref mut last_v)) = self.points.last_mut() {
            debug_assert!(at >= last_t, "StepSeries record out of order");
            if last_t == at {
                *last_v = value;
                return;
            }
        }
        self.points.push((at, value));
    }

    /// Adds `delta` to the current value at instant `at` (convenience for
    /// counters like "cores allocated").
    pub fn record_delta(&mut self, at: SimTime, delta: f64) {
        let current = self.last_value();
        self.record(at, current + delta);
    }

    /// The value at instant `t`.
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => self.initial,
            n => self.points[n - 1].1,
        }
    }

    /// The most recently recorded value (or the initial value).
    pub fn last_value(&self) -> f64 {
        self.points.last().map_or(self.initial, |&(_, v)| v)
    }

    /// The instant of the last record, if any.
    pub fn last_time(&self) -> Option<SimTime> {
        self.points.last().map(|&(t, _)| t)
    }

    /// Time-weighted average over `[from, to)`.
    ///
    /// Returns `None` when the window is empty (`from >= to`).
    pub fn time_weighted_mean(&self, from: SimTime, to: SimTime) -> Option<f64> {
        if from >= to {
            return None;
        }
        let mut weighted = 0.0;
        let mut cursor = from;
        let mut value = self.value_at(from);
        let start = self.points.partition_point(|&(pt, _)| pt <= from);
        for &(pt, v) in &self.points[start..] {
            if pt >= to {
                break;
            }
            weighted += value * (pt - cursor).as_secs_f64();
            cursor = pt;
            value = v;
        }
        weighted += value * (to - cursor).as_secs_f64();
        Some(weighted / (to - from).as_secs_f64())
    }

    /// The maximum value attained in `[from, to]` (including the value
    /// carried into the window).
    pub fn max_over(&self, from: SimTime, to: SimTime) -> f64 {
        let mut max = self.value_at(from);
        let start = self.points.partition_point(|&(pt, _)| pt <= from);
        for &(pt, v) in &self.points[start..] {
            if pt > to {
                break;
            }
            max = max.max(v);
        }
        max
    }

    /// The minimum value attained in `[from, to]`.
    pub fn min_over(&self, from: SimTime, to: SimTime) -> f64 {
        let mut min = self.value_at(from);
        let start = self.points.partition_point(|&(pt, _)| pt <= from);
        for &(pt, v) in &self.points[start..] {
            if pt > to {
                break;
            }
            min = min.min(v);
        }
        min
    }

    /// Samples the series every `step` over `[from, to]`, inclusive of both
    /// endpoints — the shape figure binaries plot these grids directly.
    ///
    /// # Panics
    /// Panics if `step` is zero.
    pub fn resample(&self, from: SimTime, to: SimTime, step: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(step > SimDuration::ZERO, "resample step must be positive");
        let mut out = Vec::new();
        let mut t = from;
        while t <= to {
            out.push((t, self.value_at(t)));
            if t == SimTime::MAX {
                break;
            }
            t = t.saturating_add(step);
        }
        out
    }

    /// Raw change points `(time, new_value)`.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Integral of the series over `[from, to)` in value·seconds
    /// (e.g. core-seconds when the series tracks allocated cores).
    pub fn integral(&self, from: SimTime, to: SimTime) -> f64 {
        self.time_weighted_mean(from, to)
            .map_or(0.0, |m| m * (to - from).as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn value_at_respects_steps() {
        let mut s = StepSeries::new(1.0);
        s.record(t(10), 3.0);
        s.record(t(20), 0.5);
        assert_eq!(s.value_at(t(0)), 1.0);
        assert_eq!(s.value_at(t(9)), 1.0);
        assert_eq!(s.value_at(t(10)), 3.0);
        assert_eq!(s.value_at(t(19)), 3.0);
        assert_eq!(s.value_at(t(20)), 0.5);
        assert_eq!(s.value_at(t(1000)), 0.5);
    }

    #[test]
    fn same_instant_overwrites() {
        let mut s = StepSeries::new(0.0);
        s.record(t(5), 1.0);
        s.record(t(5), 2.0);
        assert_eq!(s.points().len(), 1);
        assert_eq!(s.value_at(t(5)), 2.0);
    }

    #[test]
    fn record_delta_accumulates() {
        let mut s = StepSeries::new(10.0);
        s.record_delta(t(1), 5.0);
        s.record_delta(t(2), -3.0);
        assert_eq!(s.value_at(t(1)), 15.0);
        assert_eq!(s.value_at(t(2)), 12.0);
    }

    #[test]
    fn time_weighted_mean_weights_by_duration() {
        let mut s = StepSeries::new(0.0);
        s.record(t(10), 10.0);
        // [0,10): 0.0 for 10s; [10,20): 10.0 for 10s → mean 5.0
        let m = s.time_weighted_mean(t(0), t(20)).unwrap();
        assert!((m - 5.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean_subwindow() {
        let mut s = StepSeries::new(2.0);
        s.record(t(10), 4.0);
        s.record(t(30), 8.0);
        // window [5, 35): 2.0 for 5s, 4.0 for 20s, 8.0 for 5s
        let m = s.time_weighted_mean(t(5), t(35)).unwrap();
        assert!((m - (2.0 * 5.0 + 4.0 * 20.0 + 8.0 * 5.0) / 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_none() {
        let s = StepSeries::new(1.0);
        assert_eq!(s.time_weighted_mean(t(5), t(5)), None);
    }

    #[test]
    fn max_min_over_window() {
        let mut s = StepSeries::new(5.0);
        s.record(t(10), 1.0);
        s.record(t(20), 9.0);
        assert_eq!(s.max_over(t(0), t(15)), 5.0);
        assert_eq!(s.min_over(t(0), t(15)), 1.0);
        assert_eq!(s.max_over(t(0), t(25)), 9.0);
        assert_eq!(s.min_over(t(12), t(15)), 1.0);
    }

    #[test]
    fn resample_produces_grid() {
        let mut s = StepSeries::new(0.0);
        s.record(t(3), 7.0);
        let grid = s.resample(t(0), t(6), SimDuration::from_secs(2));
        assert_eq!(
            grid,
            vec![(t(0), 0.0), (t(2), 0.0), (t(4), 7.0), (t(6), 7.0)]
        );
    }

    #[test]
    fn integral_is_area_under_curve() {
        let mut s = StepSeries::new(0.0);
        s.record(t(0), 100.0); // 100 cores from t=0
        s.record(t(60), 50.0); // 50 cores from t=60
        let core_seconds = s.integral(t(0), t(120));
        assert!((core_seconds - (100.0 * 60.0 + 50.0 * 60.0)).abs() < 1e-6);
    }
}
