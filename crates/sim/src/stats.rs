//! Statistical aggregations used to report experiment results.
//!
//! The HCloud paper reports boxplots whose boundaries are the 25th/75th
//! percentiles, whiskers the 5th/95th, and a line at the *mean*
//! (Figures 4, 10); CDFs (Figure 9); and p95s of normalized performance
//! (Figures 14–16). This module provides exactly those aggregations:
//!
//! * [`percentile`] — linear-interpolation percentile of a sample;
//! * [`Boxplot`] — the paper's five-number-plus-mean summary;
//! * [`Cdf`] — empirical cumulative distribution function;
//! * [`Histogram`] — fixed-width binning for utilization heatmaps;
//! * [`OnlineStats`] — streaming mean/variance (Welford) for monitors that
//!   cannot afford to keep every sample.

use std::fmt;

/// Computes the `p`-th percentile (`0 ≤ p ≤ 100`) of `values` using linear
/// interpolation between closest ranks (the "exclusive" variant used by
/// numpy's default).
///
/// Returns `None` for an empty slice.
///
/// ```
/// use hcloud_sim::stats::percentile;
/// let v = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&v, 50.0), Some(2.5));
/// assert_eq!(percentile(&v, 0.0), Some(1.0));
/// assert_eq!(percentile(&v, 100.0), Some(4.0));
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must be in [0,100], got {p}"
    );
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    Some(percentile_sorted(&sorted, p))
}

/// Like [`percentile`] but assumes `sorted` is already ascending.
///
/// # Panics
/// Panics if `sorted` is empty or `p` is out of `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must be in [0,100], got {p}"
    );
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// The paper's boxplot summary: p5/p25/mean/p75/p95, plus min/max and count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boxplot {
    /// 5th percentile (lower whisker).
    pub p5: f64,
    /// 25th percentile (box bottom).
    pub p25: f64,
    /// Arithmetic mean (the horizontal line in the paper's boxplots).
    pub mean: f64,
    /// Median, for completeness.
    pub p50: f64,
    /// 75th percentile (box top).
    pub p75: f64,
    /// 95th percentile (upper whisker).
    pub p95: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of observations.
    pub count: usize,
}

impl Boxplot {
    /// Summarizes a sample. Returns `None` if `values` is empty.
    pub fn from_values(values: &[f64]) -> Option<Boxplot> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in boxplot input"));
        Some(Boxplot {
            p5: percentile_sorted(&sorted, 5.0),
            p25: percentile_sorted(&sorted, 25.0),
            mean: mean(values).expect("non-empty"),
            p50: percentile_sorted(&sorted, 50.0),
            p75: percentile_sorted(&sorted, 75.0),
            p95: percentile_sorted(&sorted, 95.0),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            count: values.len(),
        })
    }
}

impl fmt::Display for Boxplot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p5={:.2} p25={:.2} mean={:.2} p75={:.2} p95={:.2}",
            self.count, self.p5, self.p25, self.mean, self.p75, self.p95
        )
    }
}

/// An empirical cumulative distribution function.
///
/// Used by the queueing-time estimator (Figure 9 right): "99 out of 100 jobs
/// waiting for a 4-vCPU instance were scheduled in less than 1.4 s" is
/// exactly `cdf.quantile(0.99)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from observations. Returns `None` if empty.
    pub fn from_values(values: &[f64]) -> Option<Cdf> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        Some(Cdf { sorted })
    }

    /// `P(X ≤ x)`.
    pub fn prob_le(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`): smallest recorded x with
    /// `P(X ≤ x) ≥ q`.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if q <= 0.0 {
            return self.sorted[0];
        }
        // The epsilon guards against `k/n * n` rounding just above `k`,
        // which would shift the index past the correct support point.
        let idx =
            (((q * self.sorted.len() as f64) - 1e-9).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no observations (never true for a constructed
    /// `Cdf`, but required by the `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Iterates `(x, P(X ≤ x))` support points, for plotting.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &x)| (x, (i + 1) as f64 / n))
    }
}

/// Fixed-width histogram over `[lo, hi]`, with underflow/overflow clamped to
/// the edge bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "invalid histogram range [{lo}, {hi}]");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Records one observation (clamped into range).
    pub fn record(&mut self, x: f64) {
        let bins = self.counts.len();
        let frac = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((frac * bins as f64) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The fraction of observations in bin `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn fraction(&self, idx: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[idx] as f64 / self.total as f64
        }
    }
}

/// Streaming mean and variance via Welford's algorithm.
///
/// Monitors that watch thousands of utilization samples per simulated
/// second use this instead of retaining every sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Population standard deviation; `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 25.0), Some(20.0));
        assert_eq!(percentile(&v, 50.0), Some(30.0));
        assert_eq!(percentile(&v, 100.0), Some(50.0));
        assert_eq!(percentile(&v, 10.0), Some(14.0));
    }

    #[test]
    fn percentile_handles_unsorted_input() {
        let v = [50.0, 10.0, 30.0, 20.0, 40.0];
        assert_eq!(percentile(&v, 50.0), Some(30.0));
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_single_value() {
        assert_eq!(percentile(&[7.0], 95.0), Some(7.0));
    }

    #[test]
    fn boxplot_orders_fields() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b = Boxplot::from_values(&values).unwrap();
        assert!(b.min <= b.p5 && b.p5 <= b.p25 && b.p25 <= b.p50);
        assert!(b.p50 <= b.p75 && b.p75 <= b.p95 && b.p95 <= b.max);
        assert_eq!(b.count, 100);
        assert!((b.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_prob_and_quantile_agree() {
        let cdf = Cdf::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(cdf.prob_le(3.0), 0.6);
        assert_eq!(cdf.prob_le(0.5), 0.0);
        assert_eq!(cdf.prob_le(5.0), 1.0);
        assert_eq!(cdf.quantile(0.6), 3.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let cdf = Cdf::from_values(&[3.0, 1.0, 2.0]).unwrap();
        let pts: Vec<_> = cdf.points().collect();
        assert_eq!(pts, vec![(1.0, 1.0 / 3.0), (2.0, 2.0 / 3.0), (3.0, 1.0)]);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.record(5.0);
        h.record(95.0);
        h.record(100.0); // edge goes to last bin
        h.record(-10.0); // clamps to first bin
        h.record(150.0); // clamps to last bin
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 3);
        assert_eq!(h.total(), 5);
        assert!((h.fraction(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn online_stats_match_batch() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &v in &values {
            s.record(v);
        }
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.variance(), Some(4.0));
        assert_eq!(s.std_dev(), Some(2.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let values: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &v in &values {
            whole.record(v);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &v in &values[..20] {
            a.record(v);
        }
        for &v in &values[20..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.count(), 0);
    }
}
