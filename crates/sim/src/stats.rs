//! Statistical aggregations used to report experiment results.
//!
//! The HCloud paper reports boxplots whose boundaries are the 25th/75th
//! percentiles, whiskers the 5th/95th, and a line at the *mean*
//! (Figures 4, 10); CDFs (Figure 9); and p95s of normalized performance
//! (Figures 14–16). This module provides exactly those aggregations:
//!
//! * [`percentile`] — linear-interpolation percentile of a sample;
//! * [`Boxplot`] — the paper's five-number-plus-mean summary;
//! * [`Cdf`] — empirical cumulative distribution function;
//! * [`Histogram`] — fixed-width binning for utilization heatmaps;
//! * [`OnlineStats`] — streaming mean/variance (Welford) for monitors that
//!   cannot afford to keep every sample;
//! * [`SortedSample`] — sort once, answer every batch statistic from the
//!   shared buffer;
//! * [`QuantileSet`] — incremental order statistics: O(log n) insert and
//!   remove with exact percentile reads, for windows queried per event.

use std::fmt;

/// Computes the `p`-th percentile (`0 ≤ p ≤ 100`) of `values` using linear
/// interpolation between closest ranks (the "exclusive" variant used by
/// numpy's default).
///
/// Returns `None` for an empty slice.
///
/// ```
/// use hcloud_sim::stats::percentile;
/// let v = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&v, 50.0), Some(2.5));
/// assert_eq!(percentile(&v, 0.0), Some(1.0));
/// assert_eq!(percentile(&v, 100.0), Some(4.0));
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must be in [0,100], got {p}"
    );
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    Some(percentile_sorted(&sorted, p))
}

/// Like [`percentile`] but assumes `sorted` is already ascending.
///
/// # Panics
/// Panics if `sorted` is empty or `p` is out of `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must be in [0,100], got {p}"
    );
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// The paper's boxplot summary: p5/p25/mean/p75/p95, plus min/max and count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boxplot {
    /// 5th percentile (lower whisker).
    pub p5: f64,
    /// 25th percentile (box bottom).
    pub p25: f64,
    /// Arithmetic mean (the horizontal line in the paper's boxplots).
    pub mean: f64,
    /// Median, for completeness.
    pub p50: f64,
    /// 75th percentile (box top).
    pub p75: f64,
    /// 95th percentile (upper whisker).
    pub p95: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of observations.
    pub count: usize,
}

impl Boxplot {
    /// Summarizes a sample. Returns `None` if `values` is empty.
    pub fn from_values(values: &[f64]) -> Option<Boxplot> {
        SortedSample::from_values(values).map(|s| s.boxplot())
    }
}

/// A sample sorted exactly once, answering every batch statistic from the
/// shared buffer.
///
/// [`Boxplot::from_values`] and [`Cdf::from_values`] each used to clone and
/// re-sort; building a `SortedSample` first lets a caller derive a boxplot,
/// a CDF and arbitrary percentiles from one sort. The mean is accumulated
/// over the *original* observation order at construction, so summaries are
/// bit-identical to summing before the sort (f64 addition is not
/// associative).
#[derive(Debug, Clone, PartialEq)]
pub struct SortedSample {
    sorted: Vec<f64>,
    mean: f64,
}

impl SortedSample {
    /// Sorts `values` (ascending). Returns `None` if empty.
    ///
    /// # Panics
    /// Panics if `values` contains a NaN.
    pub fn from_values(values: &[f64]) -> Option<SortedSample> {
        let mean = mean(values)?;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Some(SortedSample { sorted, mean })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false` for a constructed sample (construction rejects empty
    /// input), but required by the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The ascending observations.
    pub fn as_slice(&self) -> &[f64] {
        &self.sorted
    }

    /// Mean over the original observation order.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The `p`-th percentile (`0 ≤ p ≤ 100`), linear interpolation;
    /// `None` on an empty sample, matching [`QuantileSet::percentile`]
    /// and [`RollingQuantiles::percentile`]. (Construction rejects empty
    /// input, so a sample obtained via [`SortedSample::from_values`]
    /// always answers `Some` — the `Option` exists so every percentile
    /// read in the crate has one signature and callers can't forget the
    /// empty case when samples arrive by other routes.)
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(percentile_sorted(&self.sorted, p))
    }

    /// The paper's five-number-plus-mean summary.
    pub fn boxplot(&self) -> Boxplot {
        // Construction guarantees a non-empty buffer, so the percentile
        // reads go straight to the sorted slice.
        Boxplot {
            p5: percentile_sorted(&self.sorted, 5.0),
            p25: percentile_sorted(&self.sorted, 25.0),
            mean: self.mean,
            p50: percentile_sorted(&self.sorted, 50.0),
            p75: percentile_sorted(&self.sorted, 75.0),
            p95: percentile_sorted(&self.sorted, 95.0),
            min: self.sorted[0],
            max: *self.sorted.last().expect("non-empty"),
            count: self.sorted.len(),
        }
    }

    /// Reuses the sorted buffer as an empirical CDF (no re-sort).
    pub fn into_cdf(self) -> Cdf {
        Cdf {
            sorted: self.sorted,
        }
    }
}

impl fmt::Display for Boxplot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p5={:.2} p25={:.2} mean={:.2} p75={:.2} p95={:.2}",
            self.count, self.p5, self.p25, self.mean, self.p75, self.p95
        )
    }
}

/// An empirical cumulative distribution function.
///
/// Used by the queueing-time estimator (Figure 9 right): "99 out of 100 jobs
/// waiting for a 4-vCPU instance were scheduled in less than 1.4 s" is
/// exactly `cdf.quantile(0.99)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from observations. Returns `None` if empty.
    pub fn from_values(values: &[f64]) -> Option<Cdf> {
        SortedSample::from_values(values).map(SortedSample::into_cdf)
    }

    /// `P(X ≤ x)`.
    pub fn prob_le(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`): smallest recorded x with
    /// `P(X ≤ x) ≥ q`.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if q <= 0.0 {
            return self.sorted[0];
        }
        // The epsilon guards against `k/n * n` rounding just above `k`,
        // which would shift the index past the correct support point.
        let idx =
            (((q * self.sorted.len() as f64) - 1e-9).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no observations (never true for a constructed
    /// `Cdf`, but required by the `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Iterates `(x, P(X ≤ x))` support points, for plotting.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &x)| (x, (i + 1) as f64 / n))
    }
}

/// Fixed-width histogram over `[lo, hi]`, with underflow/overflow clamped to
/// the edge bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "invalid histogram range [{lo}, {hi}]");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Records one observation (clamped into range).
    pub fn record(&mut self, x: f64) {
        let bins = self.counts.len();
        let frac = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((frac * bins as f64) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The fraction of observations in bin `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn fraction(&self, idx: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[idx] as f64 / self.total as f64
        }
    }
}

/// Streaming mean and variance via Welford's algorithm.
///
/// Monitors that watch thousands of utilization samples per simulated
/// second use this instead of retaining every sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Population standard deviation; `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Sentinel child index for [`QuantileSet`] tree nodes.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct TreapNode {
    key: f64,
    prio: u64,
    /// Multiplicity of `key` (duplicates collapse into one node).
    count: u32,
    /// Total multiset size of this subtree (including multiplicities).
    size: usize,
    left: u32,
    right: u32,
}

/// An incremental order-statistics multiset: O(log n) insert and
/// remove-by-value, exact percentile reads without cloning or sorting.
///
/// This is the container behind the QoS monitor's `Q90` and the queueing
/// estimator's interval quantiles: both keep a rolling window that is
/// queried on *every* insertion, where clone-and-sort costs O(n log n)
/// per event. `QuantileSet` is a treap whose priorities are a
/// deterministic hash of the value bits — the tree shape depends only on
/// the set of values present, never on wall clock or a global RNG, so
/// simulations stay bit-reproducible.
///
/// [`QuantileSet::percentile`] reproduces [`percentile_sorted`] exactly
/// (same rank arithmetic, same interpolation expression), so porting a
/// clone-and-sort call site to this container cannot change a single
/// output bit.
///
/// ```
/// use hcloud_sim::stats::QuantileSet;
/// let mut q = QuantileSet::new();
/// for v in [4.0, 1.0, 3.0, 2.0] {
///     q.insert(v);
/// }
/// assert_eq!(q.percentile(50.0), Some(2.5));
/// assert!(q.remove(4.0));
/// assert_eq!(q.percentile(100.0), Some(3.0));
/// ```
#[derive(Debug, Clone)]
pub struct QuantileSet {
    nodes: Vec<TreapNode>,
    free: Vec<u32>,
    root: u32,
}

impl Default for QuantileSet {
    fn default() -> Self {
        QuantileSet::new()
    }
}

impl QuantileSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        QuantileSet {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
        }
    }

    /// Deterministic node priority: a splitmix64 finalizer over the value
    /// bits. Equal values share one node, so ties never arise from
    /// duplicates; distinct values colliding on priority is harmless (the
    /// comparison below is still deterministic).
    fn prio_for(key: f64) -> u64 {
        let mut z = key.to_bits().wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Total number of values held (counting duplicates).
    pub fn len(&self) -> usize {
        self.subtree_size(self.root)
    }

    /// Whether the set holds no values.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Removes every value.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
    }

    /// Inserts one occurrence of `value`.
    ///
    /// # Panics
    /// Panics if `value` is NaN (a NaN would poison every ordering query).
    pub fn insert(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN inserted into QuantileSet");
        let root = self.root;
        self.root = self.insert_at(root, value);
    }

    /// Removes one occurrence of `value`; returns whether it was present.
    pub fn remove(&mut self, value: f64) -> bool {
        if value.is_nan() {
            return false;
        }
        let mut removed = false;
        let root = self.root;
        self.root = self.remove_at(root, value, &mut removed);
        removed
    }

    /// The `k`-th smallest value (0-based, duplicates counted);
    /// `None` when `k >= len()`.
    pub fn kth(&self, k: usize) -> Option<f64> {
        if k >= self.len() {
            return None;
        }
        let mut t = self.root;
        let mut k = k;
        loop {
            let node = &self.nodes[t as usize];
            let left = self.subtree_size(node.left);
            if k < left {
                t = node.left;
            } else if k < left + node.count as usize {
                return Some(node.key);
            } else {
                k -= left + node.count as usize;
                t = node.right;
            }
        }
    }

    /// The `p`-th percentile (`0 ≤ p ≤ 100`) with linear interpolation —
    /// bit-identical to [`percentile_sorted`] over the same multiset.
    /// Returns `None` when empty.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile must be in [0,100], got {p}"
        );
        let n = self.len();
        if n == 0 {
            return None;
        }
        if n == 1 {
            return self.kth(0);
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            self.kth(lo)
        } else {
            let frac = rank - lo as f64;
            let a = self.kth(lo).expect("lo < len");
            let b = self.kth(hi).expect("hi < len");
            Some(a * (1.0 - frac) + b * frac)
        }
    }

    /// Smallest value; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.kth(0)
    }

    /// Largest value; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.len().checked_sub(1).and_then(|k| self.kth(k))
    }

    fn subtree_size(&self, t: u32) -> usize {
        if t == NIL {
            0
        } else {
            self.nodes[t as usize].size
        }
    }

    fn update(&mut self, t: u32) {
        let (l, r, c) = {
            let n = &self.nodes[t as usize];
            (n.left, n.right, n.count)
        };
        self.nodes[t as usize].size = c as usize + self.subtree_size(l) + self.subtree_size(r);
    }

    fn alloc(&mut self, key: f64) -> u32 {
        let node = TreapNode {
            key,
            prio: Self::prio_for(key),
            count: 1,
            size: 1,
            left: NIL,
            right: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Rotation pulling the left child above `t`; returns the new root.
    fn rotate_right(&mut self, t: u32) -> u32 {
        let l = self.nodes[t as usize].left;
        self.nodes[t as usize].left = self.nodes[l as usize].right;
        self.nodes[l as usize].right = t;
        self.update(t);
        self.update(l);
        l
    }

    /// Rotation pulling the right child above `t`; returns the new root.
    fn rotate_left(&mut self, t: u32) -> u32 {
        let r = self.nodes[t as usize].right;
        self.nodes[t as usize].right = self.nodes[r as usize].left;
        self.nodes[r as usize].left = t;
        self.update(t);
        self.update(r);
        r
    }

    fn insert_at(&mut self, t: u32, key: f64) -> u32 {
        if t == NIL {
            return self.alloc(key);
        }
        let node_key = self.nodes[t as usize].key;
        match key.partial_cmp(&node_key).expect("NaN rejected at insert") {
            std::cmp::Ordering::Equal => {
                self.nodes[t as usize].count += 1;
                self.nodes[t as usize].size += 1;
                t
            }
            std::cmp::Ordering::Less => {
                let left = self.nodes[t as usize].left;
                let new_left = self.insert_at(left, key);
                self.nodes[t as usize].left = new_left;
                self.update(t);
                if self.nodes[new_left as usize].prio > self.nodes[t as usize].prio {
                    self.rotate_right(t)
                } else {
                    t
                }
            }
            std::cmp::Ordering::Greater => {
                let right = self.nodes[t as usize].right;
                let new_right = self.insert_at(right, key);
                self.nodes[t as usize].right = new_right;
                self.update(t);
                if self.nodes[new_right as usize].prio > self.nodes[t as usize].prio {
                    self.rotate_left(t)
                } else {
                    t
                }
            }
        }
    }

    fn remove_at(&mut self, t: u32, key: f64, removed: &mut bool) -> u32 {
        if t == NIL {
            return NIL;
        }
        let node_key = self.nodes[t as usize].key;
        match key.partial_cmp(&node_key).expect("NaN rejected at remove") {
            std::cmp::Ordering::Equal => {
                *removed = true;
                if self.nodes[t as usize].count > 1 {
                    self.nodes[t as usize].count -= 1;
                    self.nodes[t as usize].size -= 1;
                    return t;
                }
                let (l, r) = {
                    let n = &self.nodes[t as usize];
                    (n.left, n.right)
                };
                self.free.push(t);
                self.merge_treap(l, r)
            }
            std::cmp::Ordering::Less => {
                let left = self.nodes[t as usize].left;
                let new_left = self.remove_at(left, key, removed);
                self.nodes[t as usize].left = new_left;
                if *removed {
                    self.update(t);
                }
                t
            }
            std::cmp::Ordering::Greater => {
                let right = self.nodes[t as usize].right;
                let new_right = self.remove_at(right, key, removed);
                self.nodes[t as usize].right = new_right;
                if *removed {
                    self.update(t);
                }
                t
            }
        }
    }

    /// Merges two treaps where every key in `a` precedes every key in `b`.
    fn merge_treap(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio > self.nodes[b as usize].prio {
            let ar = self.nodes[a as usize].right;
            let m = self.merge_treap(ar, b);
            self.nodes[a as usize].right = m;
            self.update(a);
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let m = self.merge_treap(a, bl);
            self.nodes[b as usize].left = m;
            self.update(b);
            b
        }
    }
}

/// A bounded rolling window with O(log n) exact quantile reads.
///
/// Couples a FIFO eviction buffer with a [`QuantileSet`]: `push` evicts
/// the oldest sample once the window is full, and [`percentile`]
/// (`RollingQuantiles::percentile`) answers from the order-statistics tree
/// without cloning or sorting. This is the container behind the QoS
/// monitor's per-type quality windows and the queueing estimator's
/// release-interval windows, both of which are queried on every event.
#[derive(Debug, Clone)]
pub struct RollingQuantiles {
    cap: usize,
    buf: std::collections::VecDeque<f64>,
    set: QuantileSet,
}

impl RollingQuantiles {
    /// Creates a window keeping the most recent `cap` samples.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "rolling window must be positive");
        RollingQuantiles {
            cap,
            buf: std::collections::VecDeque::with_capacity(cap),
            set: QuantileSet::new(),
        }
    }

    /// Records one sample, evicting the oldest when the window is full.
    ///
    /// # Panics
    /// Panics if `value` is NaN.
    pub fn push(&mut self, value: f64) {
        if self.buf.len() == self.cap {
            let old = self.buf.pop_front().expect("window full implies non-empty");
            let evicted = self.set.remove(old);
            debug_assert!(evicted, "window and tree out of sync");
        }
        self.set.insert(value);
        self.buf.push_back(value);
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The `p`-th percentile (`0 ≤ p ≤ 100`) of the window; `None` when
    /// empty. Bit-identical to sorting the window and calling
    /// [`percentile_sorted`].
    pub fn percentile(&self, p: f64) -> Option<f64> {
        self.set.percentile(p)
    }

    /// The samples in insertion order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 25.0), Some(20.0));
        assert_eq!(percentile(&v, 50.0), Some(30.0));
        assert_eq!(percentile(&v, 100.0), Some(50.0));
        assert_eq!(percentile(&v, 10.0), Some(14.0));
    }

    #[test]
    fn percentile_handles_unsorted_input() {
        let v = [50.0, 10.0, 30.0, 20.0, 40.0];
        assert_eq!(percentile(&v, 50.0), Some(30.0));
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_single_value() {
        assert_eq!(percentile(&[7.0], 95.0), Some(7.0));
    }

    #[test]
    fn boxplot_orders_fields() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b = Boxplot::from_values(&values).unwrap();
        assert!(b.min <= b.p5 && b.p5 <= b.p25 && b.p25 <= b.p50);
        assert!(b.p50 <= b.p75 && b.p75 <= b.p95 && b.p95 <= b.max);
        assert_eq!(b.count, 100);
        assert!((b.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_prob_and_quantile_agree() {
        let cdf = Cdf::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(cdf.prob_le(3.0), 0.6);
        assert_eq!(cdf.prob_le(0.5), 0.0);
        assert_eq!(cdf.prob_le(5.0), 1.0);
        assert_eq!(cdf.quantile(0.6), 3.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let cdf = Cdf::from_values(&[3.0, 1.0, 2.0]).unwrap();
        let pts: Vec<_> = cdf.points().collect();
        assert_eq!(pts, vec![(1.0, 1.0 / 3.0), (2.0, 2.0 / 3.0), (3.0, 1.0)]);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.record(5.0);
        h.record(95.0);
        h.record(100.0); // edge goes to last bin
        h.record(-10.0); // clamps to first bin
        h.record(150.0); // clamps to last bin
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 3);
        assert_eq!(h.total(), 5);
        assert!((h.fraction(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn online_stats_match_batch() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &v in &values {
            s.record(v);
        }
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.variance(), Some(4.0));
        assert_eq!(s.std_dev(), Some(2.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let values: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &v in &values {
            whole.record(v);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &v in &values[..20] {
            a.record(v);
        }
        for &v in &values[20..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn sorted_sample_matches_per_statistic_paths() {
        let values = [9.0, 1.0, 5.0, 5.0, 3.0, 7.0];
        let s = SortedSample::from_values(&values).unwrap();
        assert_eq!(Some(s.boxplot()), Boxplot::from_values(&values));
        assert_eq!(s.percentile(50.0), percentile(&values, 50.0));
        assert_eq!(s.mean(), mean(&values).unwrap());
        let cdf = s.clone().into_cdf();
        assert_eq!(Some(cdf), Cdf::from_values(&values));
    }

    #[test]
    fn sorted_sample_empty_is_none() {
        assert!(SortedSample::from_values(&[]).is_none());
    }

    /// Every percentile read in the crate abstains on empty input with
    /// the same `Option` signature — `SortedSample` included.
    #[test]
    fn empty_percentile_semantics_are_uniform() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(QuantileSet::new().percentile(50.0), None);
        assert_eq!(RollingQuantiles::new(4).percentile(50.0), None);
        let s = SortedSample::from_values(&[2.0]).unwrap();
        assert_eq!(s.percentile(50.0), Some(2.0));
    }

    #[test]
    fn quantile_set_empty() {
        let q = QuantileSet::new();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        assert_eq!(q.percentile(50.0), None);
        assert_eq!(q.kth(0), None);
        assert_eq!(q.min(), None);
        assert_eq!(q.max(), None);
    }

    #[test]
    fn quantile_set_matches_percentile_sorted() {
        // Pseudo-random-ish but fixed values with duplicates.
        let values: Vec<f64> = (0..200).map(|i| ((i * 37) % 83) as f64 / 7.0).collect();
        let mut q = QuantileSet::new();
        for &v in &values {
            q.insert(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (k, &v) in sorted.iter().enumerate() {
            assert_eq!(q.kth(k), Some(v), "kth({k})");
        }
        for p in [0.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            assert_eq!(
                q.percentile(p),
                Some(percentile_sorted(&sorted, p)),
                "percentile({p})"
            );
        }
        assert_eq!(q.min(), Some(sorted[0]));
        assert_eq!(q.max(), Some(*sorted.last().unwrap()));
    }

    #[test]
    fn quantile_set_windowed_churn_matches_reference() {
        // The monitor's exact usage pattern: bounded window, query per
        // insert. Must agree with clone-and-sort at every step.
        let window = 16;
        let mut q = QuantileSet::new();
        let mut buf = std::collections::VecDeque::new();
        for i in 0..400u64 {
            let v = (((i * 2654435761) % 1013) as f64) / 1013.0;
            if buf.len() == window {
                let old: f64 = buf.pop_front().unwrap();
                assert!(q.remove(old), "evicted value missing at step {i}");
            }
            q.insert(v);
            buf.push_back(v);
            let mut sorted: Vec<f64> = buf.iter().copied().collect();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(q.len(), sorted.len());
            assert_eq!(
                q.percentile(10.0),
                Some(percentile_sorted(&sorted, 10.0)),
                "step {i}"
            );
        }
    }

    #[test]
    fn quantile_set_duplicates_and_removal() {
        let mut q = QuantileSet::new();
        for _ in 0..3 {
            q.insert(2.0);
        }
        q.insert(1.0);
        assert_eq!(q.len(), 4);
        assert!(q.remove(2.0));
        assert_eq!(q.len(), 3);
        assert_eq!(q.kth(1), Some(2.0));
        assert!(!q.remove(9.0), "absent value must report false");
        assert!(q.remove(2.0));
        assert!(q.remove(2.0));
        assert!(!q.remove(2.0), "multiplicity exhausted");
        assert_eq!(q.len(), 1);
        assert_eq!(q.percentile(50.0), Some(1.0));
    }

    #[test]
    fn quantile_set_single_value() {
        let mut q = QuantileSet::new();
        q.insert(7.0);
        assert_eq!(q.percentile(95.0), Some(7.0));
    }

    #[test]
    fn quantile_set_clear_and_reuse() {
        let mut q = QuantileSet::new();
        for i in 0..50 {
            q.insert(i as f64);
        }
        q.clear();
        assert!(q.is_empty());
        q.insert(3.0);
        q.insert(1.0);
        assert_eq!(q.percentile(100.0), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "NaN inserted")]
    fn quantile_set_rejects_nan() {
        QuantileSet::new().insert(f64::NAN);
    }

    #[test]
    fn rolling_quantiles_evicts_and_matches_sorted_window() {
        let mut w = RollingQuantiles::new(8);
        let mut reference = std::collections::VecDeque::new();
        for i in 0..100u64 {
            let v = (((i * 7919) % 541) as f64) / 541.0;
            if reference.len() == 8 {
                reference.pop_front();
            }
            reference.push_back(v);
            w.push(v);
            assert_eq!(w.len(), reference.len());
            let mut sorted: Vec<f64> = reference.iter().copied().collect();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(w.percentile(90.0), Some(percentile_sorted(&sorted, 90.0)));
        }
        assert_eq!(
            w.iter().collect::<Vec<_>>(),
            reference.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn rolling_quantiles_empty() {
        let w = RollingQuantiles::new(4);
        assert!(w.is_empty());
        assert_eq!(w.percentile(50.0), None);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rolling_quantiles_zero_cap_rejected() {
        RollingQuantiles::new(0);
    }
}
