//! Reproducible, named random-number streams.
//!
//! Every source of randomness in an HCloud experiment (spin-up overheads,
//! external-load fluctuation, job generation, profiling noise, …) draws from
//! its own named stream derived from a single master seed. Stream derivation
//! uses a splittable hash so that:
//!
//! * the same `(master seed, stream name)` pair always yields the same
//!   stream, and
//! * adding a *new* consumer of randomness never perturbs existing streams
//!   (unlike handing out draws from one shared RNG).
//!
//! The generator itself is `xoshiro256**`, implemented here directly (it is
//! ~20 lines) and exposed through the [`rand::RngCore`] traits so the whole
//! `rand` API (ranges, shuffles, Bernoulli, …) is available on top.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step, used for seeding (the construction recommended by the
/// xoshiro authors).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string, used to fold stream names into seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001B3);
    }
    hash
}

/// A deterministic `xoshiro256**` pseudo-random generator.
///
/// ```
/// use hcloud_sim::rng::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::from_seed_u64(42);
/// let mut b = SimRng::from_seed_u64(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not be seeded with all zeros; SplitMix64 of any seed
        // cannot produce four zero outputs, but guard anyway.
        if s == [0, 0, 0, 0] {
            SimRng { s: [1, 2, 3, 4] }
        } else {
            SimRng { s }
        }
    }

    fn next_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::from_seed_u64(u64::from_le_bytes(seed))
    }
}

/// Derives independent named [`SimRng`] streams from one master seed.
///
/// ```
/// use hcloud_sim::rng::RngFactory;
/// use rand::Rng;
///
/// let factory = RngFactory::new(7);
/// let mut spin_up = factory.stream("cloud.spin_up");
/// let mut arrivals = factory.stream("workload.arrivals");
/// // Streams are independent and reproducible:
/// assert_eq!(
///     factory.stream("cloud.spin_up").gen::<u64>(),
///     spin_up.gen::<u64>(),
/// );
/// assert_ne!(spin_up.gen::<u64>(), arrivals.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Creates a factory for the given master seed.
    pub fn new(master_seed: u64) -> Self {
        RngFactory { master_seed }
    }

    /// The master seed this factory derives from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Returns the stream named `name`.
    ///
    /// Calling this twice with the same name returns generators in
    /// identical states.
    pub fn stream(&self, name: &str) -> SimRng {
        SimRng::from_seed_u64(self.master_seed ^ fnv1a(name.as_bytes()))
    }

    /// Returns the stream for `name` specialized by an index, for per-entity
    /// streams such as per-server interference.
    pub fn indexed_stream(&self, name: &str, index: u64) -> SimRng {
        let mut mix =
            self.master_seed ^ fnv1a(name.as_bytes()) ^ index.wrapping_mul(0x9E3779B97F4A7C15);
        SimRng::from_seed_u64(splitmix64(&mut mix))
    }

    /// Derives a child factory, for nesting experiments (e.g. one factory
    /// per sweep point derived from the sweep's factory).
    pub fn child(&self, name: &str) -> RngFactory {
        RngFactory {
            master_seed: self.master_seed ^ fnv1a(name.as_bytes()).rotate_left(17),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::from_seed_u64(123);
        let mut b = SimRng::from_seed_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed_u64(1);
        let mut b = SimRng::from_seed_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent_of_creation_order() {
        let f = RngFactory::new(99);
        let mut x1 = f.stream("x");
        let _y = f.stream("y");
        let mut x2 = f.stream("x");
        assert_eq!(x1.next_u64(), x2.next_u64());
    }

    #[test]
    fn indexed_streams_differ() {
        let f = RngFactory::new(5);
        let mut s0 = f.indexed_stream("server", 0);
        let mut s1 = f.indexed_stream("server", 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
    }

    #[test]
    fn child_factories_are_reproducible() {
        let f = RngFactory::new(11);
        let mut a = f.child("sweep:0").stream("arrivals");
        let mut b = f.child("sweep:0").stream("arrivals");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = f.child("sweep:1").stream("arrivals");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_handles_ragged_lengths() {
        let mut rng = SimRng::from_seed_u64(3);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            // With 31 random bytes, all-zeros is astronomically unlikely.
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} produced zeros");
            }
        }
    }

    #[test]
    fn uniform_range_looks_uniform() {
        let mut rng = SimRng::from_seed_u64(777);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }
}
