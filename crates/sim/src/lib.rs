//! # hcloud-sim — deterministic discrete-event simulation substrate
//!
//! This crate provides the foundation every other HCloud crate builds on:
//!
//! * [`time`] — a microsecond-resolution simulation clock ([`SimTime`],
//!   [`SimDuration`]) with no dependence on wall-clock time;
//! * [`event`] — a deterministic discrete-event queue with stable FIFO
//!   ordering among simultaneous events. The default [`event::EventQueue`]
//!   is a hierarchical timing wheel (O(1) amortized schedule/serve at
//!   fleet scale); the retained [`event::HeapEventQueue`] is the
//!   `BinaryHeap` reference both the property suite and the digest
//!   identity benches compare it against, behind the shared
//!   [`event::EventQueueApi`] trait;
//! * [`rng`] — reproducible, named random-number streams derived from a
//!   single master seed ([`rng::RngFactory`]), so adding a new consumer of
//!   randomness never perturbs existing streams;
//! * [`dist`] — the probability distributions used throughout the cloud and
//!   workload models (exponential, normal, log-normal, Pareto, empirical…);
//! * [`stats`] — percentiles, boxplot summaries, CDFs and histograms matching
//!   the aggregations the HCloud paper reports;
//! * [`series`] — step-function time series used for utilization,
//!   allocation and cost traces (Figures 3, 18–21);
//! * [`slot`] — an append-only generational slot arena ([`slot::SlotMap`])
//!   whose handles fail typed ([`slot::StaleSlot`]) after retirement,
//!   replacing raw `usize` indexing on scheduler hot paths.
//!
//! The entire simulation is single-threaded and deterministic: running the
//! same experiment with the same master seed reproduces every figure
//! bit-for-bit.
//!
//! ```
//! use hcloud_sim::{SimTime, SimDuration, event::EventQueue};
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_secs(5), "later");
//! queue.schedule(SimTime::ZERO, "now");
//! assert_eq!(queue.pop().map(|(_, e)| e), Some("now"));
//! assert_eq!(queue.pop().map(|(_, e)| e), Some("later"));
//! ```

pub mod dist;
pub mod event;
pub mod rng;
pub mod series;
pub mod slot;
pub mod stats;
pub mod time;

pub use time::{SimDuration, SimTime};
