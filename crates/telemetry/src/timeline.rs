//! Replay a JSONL trace into a human-readable timeline.
//!
//! This is the read side of the flight recorder, behind
//! `hcloud-cli trace`. It is deliberately schema-light: known fields get
//! friendly formatting, unknown events degrade to `key=value` pairs, so a
//! newer trace still replays on an older binary.

use hcloud_json::Value;

/// Render a full JSONL trace (header line + event lines) as a timeline.
///
/// `limit` caps the number of event lines shown (the tail is summarized);
/// `None` shows everything.
pub fn render_timeline(jsonl: &str, limit: Option<usize>) -> Result<String, String> {
    let mut lines = jsonl
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header_line) = lines.next().ok_or("empty trace file")?;
    let header =
        hcloud_json::parse(header_line).map_err(|e| format!("line 1: not a JSON object: {e}"))?;

    let mut out = String::new();
    let label = header.get("run").and_then(Value::as_str).unwrap_or("?");
    let scenario = header
        .get("scenario")
        .and_then(Value::as_str)
        .unwrap_or("?");
    let strategy = header
        .get("strategy")
        .and_then(Value::as_str)
        .unwrap_or("?");
    let seed = header.get("seed").and_then(Value::as_u64).unwrap_or(0);
    let schema = header.get("schema").and_then(Value::as_u64).unwrap_or(0);
    out.push_str(&format!(
        "run {label} — scenario {scenario}, strategy {strategy}, seed {seed} (schema v{schema})\n"
    ));

    let mut shown = 0usize;
    let mut total = 0usize;
    let mut last_t_us = 0u64;
    for (idx, line) in lines {
        let ev = hcloud_json::parse(line)
            .map_err(|e| format!("line {}: not a JSON object: {e}", idx + 1))?;
        total += 1;
        if let Some(t) = ev.get("t_us").and_then(Value::as_u64) {
            last_t_us = t;
        }
        if limit.is_some_and(|cap| shown >= cap) {
            continue;
        }
        out.push_str(&render_event(&ev));
        out.push('\n');
        shown += 1;
    }
    if shown < total {
        out.push_str(&format!("… {} more event(s) not shown\n", total - shown));
    }
    out.push_str(&format!(
        "{} event(s), trace span {:.3}s of simulated time\n",
        total,
        last_t_us as f64 / 1e6
    ));
    Ok(out)
}

fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.007199254740992e15 {
        format!("{}", n as i64)
    } else {
        format!("{n:.4}")
    }
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::Null => "-".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => fmt_num(*n),
        Value::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

/// One event as a fixed-layout timeline line:
/// `+<sim seconds>  <event name>  key=value ...`.
fn render_event(ev: &Value) -> String {
    let t_us = ev.get("t_us").and_then(Value::as_u64).unwrap_or(0);
    let name = ev.get("ev").and_then(Value::as_str).unwrap_or("?");
    let mut line = format!(
        "{:>12}  {:<18}",
        format!("+{:.3}s", t_us as f64 / 1e6),
        name
    );
    if let Value::Object(pairs) = ev {
        for (k, v) in pairs {
            if k == "t_us" || k == "ev" {
                continue;
            }
            line.push_str(&format!(" {k}={}", fmt_value(v)));
        }
    }
    line.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{render_jsonl, RunMeta};
    use crate::trace::{TraceEvent, TraceKind};
    use hcloud_sim::SimTime;

    fn sample() -> String {
        let meta = RunMeta {
            label: "demo/HM/seed7".into(),
            scenario: "demo".into(),
            strategy: "HM".into(),
            seed: 7,
        };
        let events = vec![
            TraceEvent::new(
                SimTime::from_micros(1_500_000),
                TraceKind::Decision {
                    job: 3,
                    placement: "on-demand",
                    reason: "on-demand-good-enough".into(),
                    quality_target: 0.9,
                    utilization: 0.71,
                    q90: 0.93,
                },
            ),
            TraceEvent::new(
                SimTime::from_secs(2),
                TraceKind::InstanceReleased { instance: 4 },
            ),
        ];
        render_jsonl(&meta, &events)
    }

    #[test]
    fn replays_header_and_events() {
        let text = render_timeline(&sample(), None).unwrap();
        assert!(text.starts_with("run demo/HM/seed7 — scenario demo, strategy HM, seed 7"));
        assert!(text.contains("+1.500s"));
        assert!(text.contains("decision"));
        assert!(text.contains("reason=on-demand-good-enough"));
        assert!(text.contains("instance-released"));
        assert!(text.contains("instance=4"));
        assert!(text.contains("2 event(s), trace span 2.000s"));
    }

    #[test]
    fn limit_truncates_but_still_counts() {
        let text = render_timeline(&sample(), Some(1)).unwrap();
        assert!(text.contains("decision"));
        assert!(!text.contains("instance-released"));
        assert!(text.contains("… 1 more event(s) not shown"));
        assert!(text.contains("2 event(s)"));
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(render_timeline("", None).is_err());
        let mut bad = sample();
        bad.push_str("not json\n");
        let err = render_timeline(&bad, None).unwrap_err();
        assert!(err.contains("line"), "error carries a line number: {err}");
    }
}
