//! Counters, gauges, and streaming histograms.
//!
//! The registry is deliberately simple: `BTreeMap`-backed so that
//! iteration (and therefore any serialized snapshot) is deterministic, and
//! percentile queries delegate to [`hcloud_sim::stats::percentile`] so a
//! histogram quantile agrees bit-for-bit with the simulator's own
//! estimators on the same sample.

use std::collections::BTreeMap;

use hcloud_json::{ObjectBuilder, Value};
use hcloud_sim::stats::percentile;

/// Retained-sample cap before the histogram starts decimating.
const SAMPLE_CAP: usize = 4096;

/// A histogram that can absorb an unbounded stream in bounded memory.
///
/// Exact moments (count / sum / min / max) are always maintained. For
/// quantiles it retains every observation until [`SAMPLE_CAP`], then
/// *deterministically* decimates: keep every second retained sample and
/// double the sampling stride. No randomness, no wall clock — two
/// histograms fed the same stream are always identical.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingHistogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
    stride: u64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    pub fn new() -> Self {
        StreamingHistogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            samples: Vec::new(),
            stride: 1,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        if self.count.is_multiple_of(self.stride) {
            self.samples.push(value);
            if self.samples.len() >= SAMPLE_CAP {
                let mut keep = false;
                self.samples.retain(|_| {
                    keep = !keep;
                    keep
                });
                self.stride *= 2;
            }
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Quantile over the retained sample, via `hcloud_sim::stats`. Exact
    /// (agrees with `percentile` over the full stream) until the stream
    /// exceeds [`SAMPLE_CAP`] observations; an even decimation thereafter.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        percentile(&self.samples, p)
    }

    /// Number of retained quantile samples.
    pub fn retained(&self) -> usize {
        self.samples.len()
    }
}

/// A process- or session-scoped bag of named metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, StreamingHistogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to (and create, if absent) a monotonically increasing counter.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current counter value; absent counters read zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to the latest observed value.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record one observation into a named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&StreamingHistogram> {
        self.histograms.get(name)
    }

    /// Deterministic JSON snapshot of everything in the registry.
    pub fn snapshot(&self) -> Value {
        let mut counters = ObjectBuilder::new();
        for (k, v) in &self.counters {
            counters = counters.set(k, *v);
        }
        let mut gauges = ObjectBuilder::new();
        for (k, v) in &self.gauges {
            gauges = gauges.set(k, *v);
        }
        let mut histograms = ObjectBuilder::new();
        for (k, h) in &self.histograms {
            histograms = histograms.set(
                k,
                ObjectBuilder::new()
                    .set("count", h.count())
                    .set("mean", h.mean().unwrap_or(f64::NAN))
                    .set("min", h.min().unwrap_or(f64::NAN))
                    .set("max", h.max().unwrap_or(f64::NAN))
                    .set("p50", h.percentile(50.0).unwrap_or(f64::NAN))
                    .set("p99", h.percentile(99.0).unwrap_or(f64::NAN))
                    .build(),
            );
        }
        ObjectBuilder::new()
            .set("counters", counters.build())
            .set("gauges", gauges.build())
            .set("histograms", histograms.build())
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcloud_sim::rng::SimRng;
    use rand::Rng;

    #[test]
    fn counter_semantics() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.counter("runs"), 0, "absent counters read zero");
        reg.counter_add("runs", 1);
        reg.counter_add("runs", 41);
        assert_eq!(reg.counter("runs"), 42);
    }

    #[test]
    fn gauge_semantics() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.gauge("util"), None);
        reg.gauge_set("util", 0.5);
        reg.gauge_set("util", 0.8);
        assert_eq!(reg.gauge("util"), Some(0.8), "gauges keep the last value");
    }

    #[test]
    fn histogram_moments() {
        let mut reg = MetricsRegistry::new();
        for v in [3.0, 1.0, 2.0] {
            reg.observe("wait", v);
        }
        let h = reg.histogram("wait").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 6.0);
        assert_eq!(h.mean(), Some(2.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(3.0));
        assert_eq!(reg.histogram("missing"), None);
    }

    #[test]
    fn percentiles_agree_with_sim_stats_on_fixed_seed() {
        // Below the decimation cap, the histogram quantile must equal the
        // `hcloud-sim::stats` percentile over the identical sample.
        let mut rng = SimRng::from_seed_u64(0xfeed);
        let values: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>() * 250.0).collect();
        let mut h = StreamingHistogram::new();
        for &v in &values {
            h.record(v);
        }
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), percentile(&values, p), "p{p}");
        }
    }

    #[test]
    fn empty_histogram_has_no_percentile() {
        let h = StreamingHistogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn decimation_is_bounded_and_deterministic() {
        let feed = |n: u64| {
            let mut h = StreamingHistogram::new();
            for i in 0..n {
                h.record(i as f64);
            }
            h
        };
        let h = feed(100_000);
        assert_eq!(h.count(), 100_000);
        assert!(h.retained() < SAMPLE_CAP, "memory stays bounded");
        assert_eq!(h, feed(100_000), "same stream, identical state");
        // The decimated quantile still tracks the true one closely on a
        // uniform ramp.
        let p50 = h.percentile(50.0).unwrap();
        assert!((p50 - 50_000.0).abs() < 1_000.0, "p50 ≈ 50k, got {p50}");
    }

    #[test]
    fn snapshot_is_deterministic_json() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("b", 2);
        reg.counter_add("a", 1);
        reg.gauge_set("g", 1.5);
        reg.observe("h", 4.0);
        let text = reg.snapshot().to_string();
        assert!(text.contains("\"a\":1"));
        assert!(
            text.find("\"a\":1").unwrap() < text.find("\"b\":2").unwrap(),
            "BTreeMap order: keys sorted"
        );
        assert_eq!(text, reg.clone().snapshot().to_string());
    }
}
