//! Structured telemetry for the HCloud reproduction.
//!
//! Three layers, each usable on its own:
//!
//! * [`Tracer`] + [`trace_event!`] — a zero-cost-when-disabled structured
//!   event stream. Events are typed ([`TraceKind`]), stamped with **sim
//!   time** (never wall clock, so traces are deterministic), and buffered
//!   per run.
//! * [`MetricsRegistry`] — counters, gauges, and streaming histograms.
//!   Percentiles reuse the `hcloud-sim::stats` machinery so registry
//!   quantiles agree bit-for-bit with the simulator's own estimators.
//! * [`Profiler`] — per-subsystem profiling spans (event queue, placement,
//!   monitor quantiles, audit hooks): zero-cost when disabled, and split
//!   into deterministic operation counts vs machine-dependent wall clock.
//! * [`FlightRecorder`] — serializes one run's event stream to JSONL via
//!   `hcloud-json` under `results/traces/`, and [`render_timeline`] replays
//!   such a file into a human-readable timeline (`hcloud-cli trace`).
//!
//! The switchboard is [`TraceMode`], parsed from `HCLOUD_TRACE` with the
//! same loud-failure contract as the other `HCLOUD_*` knobs: `off`
//! (default, byte-identical behaviour to a build without telemetry),
//! `summary` (per-phase profiling spans on stderr), and `full` (summary
//! plus per-run flight recording).

pub mod metrics;
pub mod mode;
pub mod profile;
pub mod recorder;
pub mod timeline;
pub mod trace;

pub use metrics::{MetricsRegistry, StreamingHistogram};
pub use mode::TraceMode;
pub use profile::{ProfSpan, ProfileSnapshot, Profiler, SpanTotals};
pub use recorder::{render_jsonl, sanitize_label, FlightRecorder, RunMeta, TRACE_SCHEMA_VERSION};
pub use timeline::render_timeline;
pub use trace::{TraceEvent, TraceKind, Tracer};

/// Record a structured event iff the tracer is enabled.
///
/// The event payload expression is only evaluated when tracing is on, so
/// instrumentation sites pay a single branch on the hot path — no
/// allocation, no formatting — when the tracer is disabled.
///
/// ```
/// use hcloud_sim::SimTime;
/// use hcloud_telemetry::{trace_event, TraceKind, Tracer};
///
/// let tracer = Tracer::disabled();
/// trace_event!(tracer, SimTime::ZERO, TraceKind::Progress {
///     events_processed: 0,
///     queue_depth: 0,
/// });
/// assert!(tracer.take().is_empty());
/// ```
#[macro_export]
macro_rules! trace_event {
    ($tracer:expr, $at:expr, $kind:expr) => {
        if $tracer.is_enabled() {
            $tracer.record($at, $kind);
        }
    };
}
