//! Typed trace events and the per-run tracer.

use std::cell::RefCell;
use std::rc::Rc;

use hcloud_json::{ObjectBuilder, Value};
use hcloud_sim::SimTime;

/// One structured telemetry event, stamped with simulated time.
///
/// Sim time — never wall clock — is the only clock in a trace, which is
/// what makes traces bit-identical across machines and worker counts.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub at: SimTime,
    pub kind: TraceKind,
}

/// The event taxonomy: every decision worth explaining, by subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// `core::scheduler` — one mapping decision for an arriving job
    /// (policies P1–P8 or a fixed strategy), with the inputs that drove it.
    Decision {
        job: u64,
        placement: &'static str,
        reason: String,
        /// The job's quality target QT.
        quality_target: f64,
        /// Reserved-pool utilization at decision time.
        utilization: f64,
        /// Q90 (10th percentile of delivered quality) for the on-demand
        /// instance type under consideration; NaN (=> JSON null) when the
        /// strategy never consults the quality monitor.
        q90: f64,
    },
    /// `core::scheduler` — reserved utilization moved across the soft or
    /// hard dynamic limit since the previous decision.
    LimitCrossing {
        from: &'static str,
        to: &'static str,
        utilization: f64,
        soft: f64,
        hard: f64,
    },
    /// `core::queue_estimator` — a job was queued at the hard limit, with
    /// the estimator's predicted wait (None while the estimator is cold).
    QueueEnter {
        job: u64,
        cores: u32,
        depth: usize,
        estimated_wait_us: Option<u64>,
    },
    /// `core::queue_estimator` — a queued job finally placed: predicted
    /// vs. realized queueing time (`relieved` marks the starving-queue
    /// escape path to large on-demand).
    QueueExit {
        job: u64,
        cores: u32,
        estimated_wait_us: Option<u64>,
        actual_wait_us: u64,
        relieved: bool,
    },
    /// `core::monitor` — a latency-critical job breached its QoS bound
    /// (tail latency above the rescheduling threshold) this tick.
    QosViolation {
        job: u64,
        p99: f64,
        threshold: f64,
        bad_ticks: u32,
    },
    /// `core::monitor` — local boost: grew an LC job's core allocation on
    /// its current instance.
    LocalBoost {
        job: u64,
        extra_cores: u32,
        cores: u32,
    },
    /// `core::monitor` — persistent QoS violation: job moved to a fresh
    /// dedicated instance.
    Reschedule { job: u64, from_instance: u64 },
    /// `cloud` — an instance was acquired and is spinning up.
    InstanceSpinUp {
        instance: u64,
        itype: String,
        vcpus: u32,
        spot: bool,
        spin_up_us: u64,
    },
    /// `core::scheduler` — an idle on-demand instance's retention window
    /// expired without reuse.
    RetentionExpired { instance: u64 },
    /// `cloud` — an instance was released back to the provider.
    InstanceReleased { instance: u64 },
    /// `core::scheduler` — a spot instance was won at the bid price.
    /// `terminates_us` carries the market's pre-computed revocation time
    /// (absent when the price never crosses the bid in the horizon).
    SpotAcquired {
        instance: u64,
        bid_multiplier: f64,
        terminates_us: Option<u64>,
    },
    /// `cloud`/`core::scheduler` — a spot instance was revoked.
    SpotTerminated { instance: u64, evicted: usize },
    /// `sim::event` loop — periodic heartbeat from the runner.
    Progress {
        events_processed: u64,
        queue_depth: usize,
    },
    /// `sim::event` loop — end-of-run totals from the event queue.
    RunEnd {
        events_processed: u64,
        scheduled_total: u64,
        max_queue_depth: usize,
    },
    /// `faults` — an acquisition's spin-up was spiked by the injector.
    FaultSpinUpSpike {
        instance: u64,
        factor: f64,
        spin_up_us: u64,
    },
    /// `faults` — an acquisition attempt hung and was abandoned.
    FaultSpinUpTimeout {
        vcpus: u32,
        attempt: u32,
        waited_us: u64,
    },
    /// `faults` — the provider transiently rejected an acquisition.
    FaultOutOfCapacity { vcpus: u32, attempt: u32 },
    /// `faults` — an instance was fated to degrade (straggler onset).
    FaultDegradation {
        instance: u64,
        onset_us: u64,
        factor: f64,
    },
    /// `faults` — a preemption storm will revoke this spot instance
    /// earlier than the market would have.
    FaultStormPreemption { instance: u64, termination_us: u64 },
    /// `faults` — the QoS-monitor signal dropped out (or recovered).
    FaultMonitorDropout { active: bool },
    /// `core::scheduler` — an acquisition attempt failed; backing off
    /// exponentially before retrying.
    RecoveryRetry { attempt: u32, backoff_us: u64 },
    /// `core::scheduler` — repeated acquisition failures; falling back to
    /// the standard instance family.
    RecoveryFamilyFallback { vcpus: u32 },
    /// `core::scheduler` — the P8 dynamic policy fell back to (or
    /// recovered from) the static soft limit because monitor dropouts
    /// staled the quality distributions.
    RecoveryPolicyFallback { active: bool },
    /// `core::scheduler` — a preempted job was requeued through the
    /// normal admission path, with the work it lost since its last
    /// checkpoint.
    RecoveryRequeue { job: u64, work_lost_core_secs: f64 },
    /// `tenancy` — a tenanted job was held in its tenant queue at the
    /// admission gate (cap, pool, or borrow limit).
    TenantDefer { job: u64, tenant: u64, depth: usize },
    /// `tenancy` — the DRR drain released a held job into the pool,
    /// with its realized queue wait.
    TenantRelease {
        job: u64,
        tenant: u64,
        waited_us: u64,
        borrowed: bool,
    },
    /// `tenancy` — cross-queue preemption: a running job was evicted so
    /// a starved guaranteed queue could reclaim its share.
    TenantPreempt {
        job: u64,
        victim_tenant: u64,
        starved_tenant: u64,
        work_lost_core_secs: f64,
    },
    /// `audit` — end-of-run ledger totals from the conservation oracle.
    AuditSummary {
        demanded_core_secs: f64,
        credited_core_secs: f64,
        lost_core_secs: f64,
        jobs_admitted: u64,
        jobs_completed: u64,
        violations: u64,
    },
    /// `audit` — a conservation invariant was broken; the run fails with
    /// this violation.
    AuditViolation { message: String },
}

impl TraceKind {
    /// Stable wire name for the `ev` field.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Decision { .. } => "decision",
            TraceKind::LimitCrossing { .. } => "limit-crossing",
            TraceKind::QueueEnter { .. } => "queue-enter",
            TraceKind::QueueExit { .. } => "queue-exit",
            TraceKind::QosViolation { .. } => "qos-violation",
            TraceKind::LocalBoost { .. } => "local-boost",
            TraceKind::Reschedule { .. } => "reschedule",
            TraceKind::InstanceSpinUp { .. } => "instance-spin-up",
            TraceKind::RetentionExpired { .. } => "retention-expired",
            TraceKind::InstanceReleased { .. } => "instance-released",
            TraceKind::SpotAcquired { .. } => "spot-acquired",
            TraceKind::SpotTerminated { .. } => "spot-terminated",
            TraceKind::Progress { .. } => "progress",
            TraceKind::RunEnd { .. } => "run-end",
            TraceKind::FaultSpinUpSpike { .. } => "fault-spin-up-spike",
            TraceKind::FaultSpinUpTimeout { .. } => "fault-spin-up-timeout",
            TraceKind::FaultOutOfCapacity { .. } => "fault-out-of-capacity",
            TraceKind::FaultDegradation { .. } => "fault-degradation",
            TraceKind::FaultStormPreemption { .. } => "fault-storm-preemption",
            TraceKind::FaultMonitorDropout { .. } => "fault-monitor-dropout",
            TraceKind::RecoveryRetry { .. } => "recovery-retry",
            TraceKind::RecoveryFamilyFallback { .. } => "recovery-family-fallback",
            TraceKind::RecoveryPolicyFallback { .. } => "recovery-policy-fallback",
            TraceKind::RecoveryRequeue { .. } => "recovery-requeue",
            TraceKind::TenantDefer { .. } => "tenant-defer",
            TraceKind::TenantRelease { .. } => "tenant-release",
            TraceKind::TenantPreempt { .. } => "tenant-preempt",
            TraceKind::AuditSummary { .. } => "audit-summary",
            TraceKind::AuditViolation { .. } => "audit-violation",
        }
    }
}

impl TraceEvent {
    pub fn new(at: SimTime, kind: TraceKind) -> Self {
        TraceEvent { at, kind }
    }

    /// Serialize as one deterministic JSON object:
    /// `{"t_us": <sim micros>, "ev": "<kind>", ...payload}`.
    pub fn to_json(&self) -> Value {
        let mut b = ObjectBuilder::new()
            .set("t_us", self.at.as_micros())
            .set("ev", self.kind.name());
        b = match &self.kind {
            TraceKind::Decision {
                job,
                placement,
                reason,
                quality_target,
                utilization,
                q90,
            } => b
                .set("job", *job)
                .set("placement", *placement)
                .set("reason", reason.as_str())
                .set("qt", *quality_target)
                .set("util", *utilization)
                .set("q90", *q90),
            TraceKind::LimitCrossing {
                from,
                to,
                utilization,
                soft,
                hard,
            } => b
                .set("from", *from)
                .set("to", *to)
                .set("util", *utilization)
                .set("soft", *soft)
                .set("hard", *hard),
            TraceKind::QueueEnter {
                job,
                cores,
                depth,
                estimated_wait_us,
            } => b
                .set("job", *job)
                .set("cores", *cores)
                .set("depth", *depth as u64)
                .set("est_us", *estimated_wait_us),
            TraceKind::QueueExit {
                job,
                cores,
                estimated_wait_us,
                actual_wait_us,
                relieved,
            } => b
                .set("job", *job)
                .set("cores", *cores)
                .set("est_us", *estimated_wait_us)
                .set("actual_us", *actual_wait_us)
                .set("relieved", *relieved),
            TraceKind::QosViolation {
                job,
                p99,
                threshold,
                bad_ticks,
            } => b
                .set("job", *job)
                .set("p99", *p99)
                .set("threshold", *threshold)
                .set("bad_ticks", *bad_ticks),
            TraceKind::LocalBoost {
                job,
                extra_cores,
                cores,
            } => b
                .set("job", *job)
                .set("extra_cores", *extra_cores)
                .set("cores", *cores),
            TraceKind::Reschedule { job, from_instance } => {
                b.set("job", *job).set("from_instance", *from_instance)
            }
            TraceKind::InstanceSpinUp {
                instance,
                itype,
                vcpus,
                spot,
                spin_up_us,
            } => b
                .set("instance", *instance)
                .set("itype", itype.as_str())
                .set("vcpus", *vcpus)
                .set("spot", *spot)
                .set("spin_up_us", *spin_up_us),
            TraceKind::RetentionExpired { instance } => b.set("instance", *instance),
            TraceKind::InstanceReleased { instance } => b.set("instance", *instance),
            TraceKind::SpotAcquired {
                instance,
                bid_multiplier,
                terminates_us,
            } => b
                .set("instance", *instance)
                .set("bid_multiplier", *bid_multiplier)
                .set("terminates_us", *terminates_us),
            TraceKind::SpotTerminated { instance, evicted } => {
                b.set("instance", *instance).set("evicted", *evicted as u64)
            }
            TraceKind::Progress {
                events_processed,
                queue_depth,
            } => b
                .set("events_processed", *events_processed)
                .set("queue_depth", *queue_depth as u64),
            TraceKind::RunEnd {
                events_processed,
                scheduled_total,
                max_queue_depth,
            } => b
                .set("events_processed", *events_processed)
                .set("scheduled_total", *scheduled_total)
                .set("max_queue_depth", *max_queue_depth as u64),
            TraceKind::FaultSpinUpSpike {
                instance,
                factor,
                spin_up_us,
            } => b
                .set("instance", *instance)
                .set("factor", *factor)
                .set("spin_up_us", *spin_up_us),
            TraceKind::FaultSpinUpTimeout {
                vcpus,
                attempt,
                waited_us,
            } => b
                .set("vcpus", *vcpus)
                .set("attempt", *attempt)
                .set("waited_us", *waited_us),
            TraceKind::FaultOutOfCapacity { vcpus, attempt } => {
                b.set("vcpus", *vcpus).set("attempt", *attempt)
            }
            TraceKind::FaultDegradation {
                instance,
                onset_us,
                factor,
            } => b
                .set("instance", *instance)
                .set("onset_us", *onset_us)
                .set("factor", *factor),
            TraceKind::FaultStormPreemption {
                instance,
                termination_us,
            } => b
                .set("instance", *instance)
                .set("termination_us", *termination_us),
            TraceKind::FaultMonitorDropout { active } => b.set("active", *active),
            TraceKind::RecoveryRetry {
                attempt,
                backoff_us,
            } => b.set("attempt", *attempt).set("backoff_us", *backoff_us),
            TraceKind::RecoveryFamilyFallback { vcpus } => b.set("vcpus", *vcpus),
            TraceKind::RecoveryPolicyFallback { active } => b.set("active", *active),
            TraceKind::RecoveryRequeue {
                job,
                work_lost_core_secs,
            } => b
                .set("job", *job)
                .set("work_lost_core_secs", *work_lost_core_secs),
            TraceKind::TenantDefer { job, tenant, depth } => b
                .set("job", *job)
                .set("tenant", *tenant)
                .set("depth", *depth as u64),
            TraceKind::TenantRelease {
                job,
                tenant,
                waited_us,
                borrowed,
            } => b
                .set("job", *job)
                .set("tenant", *tenant)
                .set("waited_us", *waited_us)
                .set("borrowed", *borrowed),
            TraceKind::TenantPreempt {
                job,
                victim_tenant,
                starved_tenant,
                work_lost_core_secs,
            } => b
                .set("job", *job)
                .set("victim_tenant", *victim_tenant)
                .set("starved_tenant", *starved_tenant)
                .set("work_lost_core_secs", *work_lost_core_secs),
            TraceKind::AuditSummary {
                demanded_core_secs,
                credited_core_secs,
                lost_core_secs,
                jobs_admitted,
                jobs_completed,
                violations,
            } => b
                .set("demanded_core_secs", *demanded_core_secs)
                .set("credited_core_secs", *credited_core_secs)
                .set("lost_core_secs", *lost_core_secs)
                .set("jobs_admitted", *jobs_admitted)
                .set("jobs_completed", *jobs_completed)
                .set("violations", *violations),
            TraceKind::AuditViolation { message } => b.set("message", message.as_str()),
        };
        b.build()
    }
}

/// A cheap-to-clone handle onto one run's event buffer.
///
/// Each simulated run owns exactly one buffer; the scheduler and the cloud
/// share it through clones (single-threaded within a run — runs only cross
/// threads as finished `Vec<TraceEvent>`s). A disabled tracer reduces every
/// [`trace_event!`] site to a single predictable branch.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    buf: Rc<RefCell<Vec<TraceEvent>>>,
}

impl Tracer {
    /// A tracer that records nothing; this is the hot-path default.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            buf: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// A tracer that buffers every recorded event.
    pub fn enabled() -> Tracer {
        Tracer {
            enabled: true,
            buf: Rc::new(RefCell::new(Vec::new())),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append one event. Call through [`trace_event!`] so the payload is
    /// not even constructed when tracing is off.
    pub fn record(&self, at: SimTime, kind: TraceKind) {
        if self.enabled {
            self.buf.borrow_mut().push(TraceEvent::new(at, kind));
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }

    /// Drain the buffer, leaving the tracer empty but usable.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.buf.borrow_mut())
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn progress(n: u64) -> TraceKind {
        TraceKind::Progress {
            events_processed: n,
            queue_depth: 3,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.record(SimTime::from_secs(1), progress(1));
        crate::trace_event!(t, SimTime::from_secs(2), progress(2));
        assert!(t.is_empty());
        assert!(t.take().is_empty());
    }

    #[test]
    fn enabled_tracer_buffers_in_order_and_shares_across_clones() {
        let t = Tracer::enabled();
        let clone = t.clone();
        crate::trace_event!(t, SimTime::from_secs(1), progress(1));
        crate::trace_event!(clone, SimTime::from_secs(2), progress(2));
        assert_eq!(t.len(), 2);
        let events = t.take();
        assert_eq!(events[0].at, SimTime::from_secs(1));
        assert_eq!(events[1].at, SimTime::from_secs(2));
        assert!(clone.is_empty(), "take drains the shared buffer");
    }

    #[test]
    fn json_encoding_is_stable() {
        let ev = TraceEvent::new(
            SimTime::from_micros(1_500_000),
            TraceKind::Decision {
                job: 7,
                placement: "reserved",
                reason: "below-soft-limit".into(),
                quality_target: 0.9,
                utilization: 0.25,
                q90: f64::NAN,
            },
        );
        let line = ev.to_json().to_string();
        assert!(line.starts_with("{\"t_us\":1500000,\"ev\":\"decision\""));
        assert!(line.contains("\"q90\":null"), "NaN serializes as null");
    }

    #[test]
    fn audit_events_encode_stably() {
        let ev = TraceEvent::new(
            SimTime::from_secs(9),
            TraceKind::AuditSummary {
                demanded_core_secs: 100.0,
                credited_core_secs: 100.0,
                lost_core_secs: 0.0,
                jobs_admitted: 3,
                jobs_completed: 3,
                violations: 0,
            },
        );
        let line = ev.to_json().to_string();
        assert!(line.starts_with("{\"t_us\":9000000,\"ev\":\"audit-summary\""));
        assert!(line.contains("\"jobs_admitted\":3"));
        let ev = TraceEvent::new(
            SimTime::ZERO,
            TraceKind::AuditViolation {
                message: "work conservation broke".into(),
            },
        );
        assert!(ev
            .to_json()
            .to_string()
            .contains("\"ev\":\"audit-violation\""));
    }

    #[test]
    fn optional_waits_round_trip() {
        let ev = TraceEvent::new(
            SimTime::ZERO,
            TraceKind::QueueEnter {
                job: 1,
                cores: 4,
                depth: 2,
                estimated_wait_us: None,
            },
        );
        assert!(ev.to_json().to_string().contains("\"est_us\":null"));
        let ev = TraceEvent::new(
            SimTime::ZERO,
            TraceKind::QueueEnter {
                job: 1,
                cores: 4,
                depth: 2,
                estimated_wait_us: Some(250),
            },
        );
        assert!(ev.to_json().to_string().contains("\"est_us\":250"));
    }
}
