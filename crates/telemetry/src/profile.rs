//! Per-subsystem profiling spans.
//!
//! The trace layer answers *what happened*; the profiler answers *where
//! the wall clock went*. Each simulated run can carry a [`Profiler`] — the
//! same cheap-to-clone `Rc` handle idiom as [`crate::Tracer`] — and the
//! hot paths wrap their work in [`Profiler::time`], attributing it to one
//! of a small fixed set of [`ProfSpan`] subsystems. A disabled profiler
//! reduces every site to a single predictable branch: no `Instant::now`,
//! no accumulation, byte-identical behaviour to an uninstrumented build.
//!
//! Two kinds of numbers come out of a [`ProfileSnapshot`]:
//!
//! * **operation counts** — fully deterministic (a function of the
//!   simulation alone), safe to serialize into committed artifacts and to
//!   diff across worker counts;
//! * **wall-clock nanoseconds** — machine-dependent, reported on stderr
//!   (`HCLOUD_TRACE=summary`) and in the perf benches' wall-clock
//!   artifacts only.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use hcloud_json::{ObjectBuilder, Value};

/// The instrumented subsystems, in reporting order.
///
/// The set mirrors the optimisation history: the event queue (PR 6's
/// timing wheel vs the reference heap), the placement front door (PR 4's
/// indexed `find_placement`), the quality-monitor quantiles (PR 4's
/// `QuantileSet`), and the conservation-audit hooks (PR 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfSpan {
    /// `sim::event` — scheduling events into the queue.
    EventPush,
    /// `sim::event` — draining due event batches out of the queue.
    EventPop,
    /// `core::scheduler` — the typed placement front door.
    FindPlacement,
    /// `core::monitor` — quality-sample absorption and Q90 queries.
    MonitorQuantiles,
    /// `audit` — per-step and end-of-run conservation checks.
    AuditHooks,
}

/// Number of subsystems (the fixed cell-array size).
pub const PROF_SPANS: usize = 5;

impl ProfSpan {
    /// Every subsystem, in reporting order.
    pub const ALL: [ProfSpan; PROF_SPANS] = [
        ProfSpan::EventPush,
        ProfSpan::EventPop,
        ProfSpan::FindPlacement,
        ProfSpan::MonitorQuantiles,
        ProfSpan::AuditHooks,
    ];

    /// Stable wire/report name.
    pub fn name(self) -> &'static str {
        match self {
            ProfSpan::EventPush => "event-push",
            ProfSpan::EventPop => "event-pop",
            ProfSpan::FindPlacement => "find-placement",
            ProfSpan::MonitorQuantiles => "monitor-quantiles",
            ProfSpan::AuditHooks => "audit-hooks",
        }
    }
}

/// One subsystem's accumulated cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanTotals {
    /// Operations attributed to the span (deterministic).
    pub ops: u64,
    /// Wall-clock nanoseconds inside the span (machine-dependent).
    pub nanos: u64,
}

/// A cheap-to-clone handle onto one run's span accumulators.
///
/// Single-threaded within a run, like [`crate::Tracer`]; runs only cross
/// threads as finished [`ProfileSnapshot`]s.
#[derive(Debug, Clone)]
pub struct Profiler {
    enabled: bool,
    cells: Rc<RefCell<[SpanTotals; PROF_SPANS]>>,
}

impl Profiler {
    /// A profiler that measures nothing; this is the hot-path default.
    pub fn disabled() -> Profiler {
        Profiler {
            enabled: false,
            cells: Rc::new(RefCell::new([SpanTotals::default(); PROF_SPANS])),
        }
    }

    /// A profiler that attributes wrapped work to its subsystem.
    pub fn enabled() -> Profiler {
        Profiler {
            enabled: true,
            cells: Rc::new(RefCell::new([SpanTotals::default(); PROF_SPANS])),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Runs `f`, attributing its wall clock and one operation to `span`.
    /// Disabled: exactly one branch, then `f` runs unobserved.
    #[inline]
    pub fn time<T>(&self, span: ProfSpan, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        let nanos = start.elapsed().as_nanos() as u64;
        let mut cells = self.cells.borrow_mut();
        let cell = &mut cells[span as usize];
        cell.ops += 1;
        cell.nanos += nanos;
        out
    }

    /// The accumulated totals so far.
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            spans: *self.cells.borrow(),
        }
    }
}

/// Frozen per-subsystem totals, indexable by [`ProfSpan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    spans: [SpanTotals; PROF_SPANS],
}

impl ProfileSnapshot {
    /// One subsystem's totals.
    pub fn get(&self, span: ProfSpan) -> SpanTotals {
        self.spans[span as usize]
    }

    /// Whether any span recorded anything.
    pub fn is_empty(&self) -> bool {
        self.spans.iter().all(|s| s.ops == 0)
    }

    /// Total operations across subsystems.
    pub fn total_ops(&self) -> u64 {
        self.spans.iter().map(|s| s.ops).sum()
    }

    /// Sums `other` into `self` (plan/session aggregation).
    pub fn absorb(&mut self, other: &ProfileSnapshot) {
        for (mine, theirs) in self.spans.iter_mut().zip(&other.spans) {
            mine.ops += theirs.ops;
            mine.nanos += theirs.nanos;
        }
    }

    /// Deterministic JSON object of per-subsystem operation counts only
    /// (wall clock deliberately excluded — artifacts carrying this block
    /// stay byte-identical across machines and worker counts).
    pub fn ops_json(&self) -> Value {
        let mut b = ObjectBuilder::new();
        for span in ProfSpan::ALL {
            b = b.set(span.name(), self.get(span).ops);
        }
        b.build()
    }

    /// JSON object of per-subsystem wall-clock milliseconds (the perf
    /// benches' localization payload; machine-dependent by nature).
    pub fn wall_ms_json(&self) -> Value {
        let mut b = ObjectBuilder::new();
        for span in ProfSpan::ALL {
            b = b.set(span.name(), self.get(span).nanos as f64 / 1e6);
        }
        b.build()
    }

    /// One human-readable summary line: `event-push 1234 ops 5.6ms, …`.
    pub fn summary(&self) -> String {
        ProfSpan::ALL
            .iter()
            .map(|&span| {
                let t = self.get(span);
                format!(
                    "{} {} ops {:.1}ms",
                    span.name(),
                    t.ops,
                    t.nanos as f64 / 1e6
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_accumulates_nothing() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        let v = p.time(ProfSpan::EventPush, || 41 + 1);
        assert_eq!(v, 42);
        assert!(p.snapshot().is_empty());
        assert_eq!(p.snapshot().total_ops(), 0);
    }

    #[test]
    fn enabled_profiler_counts_ops_per_span() {
        let p = Profiler::enabled();
        for _ in 0..3 {
            p.time(ProfSpan::FindPlacement, || std::hint::black_box(1));
        }
        p.time(ProfSpan::AuditHooks, || std::hint::black_box(2));
        let snap = p.snapshot();
        assert_eq!(snap.get(ProfSpan::FindPlacement).ops, 3);
        assert_eq!(snap.get(ProfSpan::AuditHooks).ops, 1);
        assert_eq!(snap.get(ProfSpan::EventPop).ops, 0);
        assert_eq!(snap.total_ops(), 4);
        assert!(!snap.is_empty());
    }

    #[test]
    fn clones_share_one_accumulator() {
        let p = Profiler::enabled();
        let q = p.clone();
        q.time(ProfSpan::MonitorQuantiles, || ());
        assert_eq!(p.snapshot().get(ProfSpan::MonitorQuantiles).ops, 1);
    }

    #[test]
    fn snapshots_absorb_and_serialize_deterministically() {
        let p = Profiler::enabled();
        p.time(ProfSpan::EventPush, || ());
        p.time(ProfSpan::EventPush, || ());
        let mut total = ProfileSnapshot::default();
        total.absorb(&p.snapshot());
        total.absorb(&p.snapshot());
        assert_eq!(total.get(ProfSpan::EventPush).ops, 4);
        let json = total.ops_json().to_string();
        assert!(json.contains("\"event-push\":4"), "{json}");
        // Counts only — no wall-clock field sneaks into the ops block.
        assert!(!json.contains("ms"), "{json}");
        let line = total.summary();
        assert!(line.starts_with("event-push 4 ops"), "{line}");
    }

    #[test]
    fn span_names_are_stable_and_unique() {
        let names: Vec<&str> = ProfSpan::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(names[0], "event-push");
    }
}
