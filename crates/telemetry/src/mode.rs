//! The `HCLOUD_TRACE` switch.

use std::fmt;

/// How much telemetry a process should produce.
///
/// Parsed from `HCLOUD_TRACE` with the same contract as the other
/// `HCLOUD_*` knobs: unset means [`TraceMode::Off`], malformed values are a
/// hard error (callers exit 2) rather than a silently ignored typo.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceMode {
    /// No telemetry at all — byte-identical output to the pre-telemetry
    /// code paths.
    #[default]
    Off,
    /// Per-phase profiling spans and registry summaries on stderr; no
    /// per-event recording.
    Summary,
    /// Everything in `Summary`, plus per-run structured event traces
    /// flight-recorded to `results/traces/*.jsonl`.
    Full,
}

impl TraceMode {
    /// Parse an optional `HCLOUD_TRACE` value; `None` means unset.
    pub fn parse(raw: Option<&str>) -> Result<TraceMode, String> {
        match raw {
            None => Ok(TraceMode::Off),
            Some(s) => match s {
                "off" => Ok(TraceMode::Off),
                "summary" => Ok(TraceMode::Summary),
                "full" => Ok(TraceMode::Full),
                other => Err(format!(
                    "invalid HCLOUD_TRACE {other:?}: expected \"off\", \"summary\" or \"full\""
                )),
            },
        }
    }

    /// Read `HCLOUD_TRACE` from the environment.
    pub fn from_env() -> Result<TraceMode, String> {
        TraceMode::parse(std::env::var("HCLOUD_TRACE").ok().as_deref())
    }

    /// True when per-event recording (the flight recorder) is on.
    pub fn records_events(self) -> bool {
        self == TraceMode::Full
    }

    /// True when profiling spans should be reported (summary or full).
    pub fn reports_spans(self) -> bool {
        self >= TraceMode::Summary
    }
}

impl fmt::Display for TraceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceMode::Off => "off",
            TraceMode::Summary => "summary",
            TraceMode::Full => "full",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_defaults_to_off() {
        assert_eq!(TraceMode::parse(None), Ok(TraceMode::Off));
        assert_eq!(TraceMode::default(), TraceMode::Off);
    }

    #[test]
    fn parses_all_levels() {
        assert_eq!(TraceMode::parse(Some("off")), Ok(TraceMode::Off));
        assert_eq!(TraceMode::parse(Some("summary")), Ok(TraceMode::Summary));
        assert_eq!(TraceMode::parse(Some("full")), Ok(TraceMode::Full));
    }

    #[test]
    fn rejects_garbage_loudly() {
        let err = TraceMode::parse(Some("verbose")).unwrap_err();
        assert!(err.contains("HCLOUD_TRACE"), "error names the knob: {err}");
        assert!(err.contains("verbose"), "error echoes the value: {err}");
    }

    #[test]
    fn levels_are_ordered() {
        assert!(TraceMode::Full.records_events());
        assert!(!TraceMode::Summary.records_events());
        assert!(TraceMode::Summary.reports_spans());
        assert!(TraceMode::Full.reports_spans());
        assert!(!TraceMode::Off.reports_spans());
    }
}
