//! The per-run flight recorder: trace streams as JSONL files.
//!
//! One file per simulated run under `results/traces/`. The first line is a
//! header object carrying the run's identity (label, scenario, strategy,
//! seed, schema version); every following line is one [`TraceEvent`].
//! Nothing in a file depends on wall clock, worker count, or machine, so
//! the same run always produces the same bytes — the CI smoke job diffs
//! whole trace directories across `HCLOUD_JOBS` settings.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use hcloud_json::ObjectBuilder;

use crate::trace::TraceEvent;

/// Bumped whenever the JSONL layout changes incompatibly.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Identity of one recorded run — the header line of its trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Human-readable run label, e.g. `HighVariability/HM/seed42`.
    pub label: String,
    /// Scenario name (`ScenarioKind::name()` or `"custom"`).
    pub scenario: String,
    /// Strategy short name (SR, OdF, OdM, HF, HM).
    pub strategy: String,
    /// The run's effective seed.
    pub seed: u64,
}

/// Serialize a run (header + events) as deterministic JSONL.
pub fn render_jsonl(meta: &RunMeta, events: &[TraceEvent]) -> String {
    let header = ObjectBuilder::new()
        .set("schema", TRACE_SCHEMA_VERSION)
        .set("run", meta.label.as_str())
        .set("scenario", meta.scenario.as_str())
        .set("strategy", meta.strategy.as_str())
        .set("seed", meta.seed)
        .set("events", events.len() as u64)
        .build();
    let mut out = String::new();
    out.push_str(&header.to_string());
    out.push('\n');
    for ev in events {
        out.push_str(&ev.to_json().to_string());
        out.push('\n');
    }
    out
}

/// Turn a run label into a safe, stable file stem: every character outside
/// `[A-Za-z0-9._-]` becomes `-`.
pub fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Writes run traces into a directory (normally `results/traces/`).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    dir: PathBuf,
}

impl FlightRecorder {
    /// The conventional location, relative to the working directory.
    pub fn default_dir() -> FlightRecorder {
        FlightRecorder::new("results/traces")
    }

    pub fn new(dir: impl Into<PathBuf>) -> FlightRecorder {
        FlightRecorder { dir: dir.into() }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a run records into: `<dir>/<sanitized label>.jsonl`.
    pub fn path_for(&self, meta: &RunMeta) -> PathBuf {
        self.dir
            .join(format!("{}.jsonl", sanitize_label(&meta.label)))
    }

    /// Serialize and write one run's trace; returns the file written.
    pub fn write(&self, meta: &RunMeta, events: &[TraceEvent]) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_for(meta);
        fs::write(&path, render_jsonl(meta, events))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;
    use hcloud_sim::SimTime;

    fn meta() -> RunMeta {
        RunMeta {
            label: "HighVariability/HM/seed42".into(),
            scenario: "HighVariability".into(),
            strategy: "HM".into(),
            seed: 42,
        }
    }

    #[test]
    fn labels_sanitize_to_safe_stems() {
        assert_eq!(
            sanitize_label("HighVariability/HM/seed42"),
            "HighVariability-HM-seed42"
        );
        assert_eq!(sanitize_label("a b:c\\d"), "a-b-c-d");
        assert_eq!(sanitize_label("ok_1.2-x"), "ok_1.2-x");
    }

    #[test]
    fn jsonl_has_header_then_events() {
        let events = vec![
            TraceEvent::new(
                SimTime::ZERO,
                TraceKind::Progress {
                    events_processed: 0,
                    queue_depth: 1,
                },
            ),
            TraceEvent::new(
                SimTime::from_secs(5),
                TraceKind::InstanceReleased { instance: 3 },
            ),
        ];
        let text = render_jsonl(&meta(), &events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let header = hcloud_json::parse(lines[0]).unwrap();
        assert_eq!(header.get("schema").unwrap().as_u64(), Some(1));
        assert_eq!(
            header.get("run").unwrap().as_str(),
            Some("HighVariability/HM/seed42")
        );
        assert_eq!(header.get("events").unwrap().as_u64(), Some(2));
        let ev = hcloud_json::parse(lines[2]).unwrap();
        assert_eq!(ev.get("ev").unwrap().as_str(), Some("instance-released"));
        assert_eq!(ev.get("t_us").unwrap().as_u64(), Some(5_000_000));
    }

    #[test]
    fn rendering_is_reproducible() {
        let events = vec![TraceEvent::new(
            SimTime::from_micros(17),
            TraceKind::RetentionExpired { instance: 9 },
        )];
        assert_eq!(
            render_jsonl(&meta(), &events),
            render_jsonl(&meta(), &events)
        );
    }
}
