//! # hcloud-json — dependency-free JSON for the HCloud reproduction
//!
//! The workspace builds fully offline, so instead of `serde_json` it
//! carries this small crate: a [`Value`] tree, a strict recursive-descent
//! [`parse`] function, and compact/pretty writers. The surface is exactly
//! what the repo needs — scenario export/import in `hcloud-cli`, run
//! summaries, and reading back the figure series `hcloud-bench` writes
//! under `results/`.
//!
//! Numbers are `f64` (like `serde_json`'s default arithmetic model);
//! non-finite values serialize as `null`, mirroring what
//! `hcloud_bench::report::write_json` has always emitted. Object key
//! order is preserved, so serialization is deterministic.

#![forbid(unsafe_code)]

use std::fmt;

/// A JSON document: the usual six-way tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(values) => Some(values),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer, if this is a whole number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && (0.0..9.007199254740992e15).contains(n) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }
}

/// Chained construction of a JSON object with deterministic key order.
///
/// ```
/// use hcloud_json::ObjectBuilder;
/// let v = ObjectBuilder::new().set("x", 1.0).set("ok", true).build();
/// assert_eq!(v.to_string(), r#"{"x":1,"ok":true}"#);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjectBuilder {
    pairs: Vec<(String, Value)>,
}

impl ObjectBuilder {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a member.
    pub fn set(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.pairs.push((key.to_string(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Value {
        Value::Object(self.pairs)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Num(n as f64)
            }
        }
    )*};
}

from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(values: Vec<Value>) -> Self {
        Value::Array(values)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Self {
        opt.map_or(Value::Null, Into::into)
    }
}

// ---------------------------------------------------------------------
// Writing

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // `{}` on f64 is the shortest round-trip representation, which is
        // always a valid JSON number.
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(values) => {
            out.push('[');
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(v, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    match v {
        Value::Array(values) if !values.is_empty() => {
            out.push_str("[\n");
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

// ---------------------------------------------------------------------
// Parsing

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", byte as char))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected `{word}`"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(format!("unexpected character {:?}", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut values = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(values));
        }
        loop {
            values.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(values));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                // Surrogate pairs are not supported; the
                                // writers here never emit them.
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("input was a valid &str");
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Num(n)),
            Err(_) => self.err(format!("bad number `{text}`")),
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after document");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = ObjectBuilder::new()
            .set("name", "hcloud")
            .set("perf", 0.973)
            .set("jobs", 7200u64)
            .set("ok", true)
            .set("none", Value::Null)
            .set(
                "rows",
                Value::Array(vec![
                    Value::Array(vec![Value::Num(1.0), Value::Num(2.5)]),
                    Value::Array(vec![Value::Num(-3.0), Value::Num(4e-3)]),
                ]),
            )
            .build();
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
        let pretty = v.to_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn accessors_work() {
        let v = parse(r#"{"columns": ["a", "b"], "rows": [[1, 2], [3, 4]]}"#).unwrap();
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].as_array().unwrap()[0].as_f64(), Some(3.0));
        assert_eq!(
            v.get("columns").unwrap().as_array().unwrap()[1].as_str(),
            Some("b")
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{08}\u{0C}\u{1b}é".to_string());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(42.0).to_string(), "42");
        assert_eq!(Value::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn parse_errors_carry_position() {
        let e = parse("{\"a\": }").unwrap_err();
        assert_eq!(e.at, 6);
        assert!(parse("[1, 2").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn u64_accessor_rejects_fractions() {
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(3.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }
}
