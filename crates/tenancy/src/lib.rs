//! Multi-tenant hierarchical queues for the HCloud scheduler.
//!
//! HCloud provisions one undivided job stream; this crate layers weighted
//! tenant queues in front of admission, in the style of Volcano's
//! queue-state management. Each tenant owns a [`TenantQueue`] with
//!
//! * a **weight** driving deficit-round-robin (DRR) drain ordering,
//! * a **guaranteed share** (cores it may always reach),
//! * a **cap** (cores it may never exceed), and
//! * a lifecycle state ([`QueueState`]): `Open` queues admit and borrow,
//!   `Closing` queues drain without borrowing, `Closed` queues bypass
//!   tenancy entirely (best-effort, untenanted).
//!
//! The [`FairShare`] runtime tracks usage against one bounded logical
//! pool. A tenant running above its guarantee is **borrowing** idle
//! capacity; borrowing is elastic — it is only granted while no other
//! tenant is held below its guarantee with work pending. When a
//! guaranteed queue still starves (its head job outwaits the starvation
//! window), [`FairShare::starved_victims`] selects running jobs to
//! preempt: **borrowed first** (largest borrower, most recently admitted
//! job first), then jobs of tenants above their weighted fair share.
//! The scheduler requeues victims through its fault-recovery path, so
//! lost work is carried in the same `Carryover` accounting as spot
//! preemptions.
//!
//! The crate depends only on `hcloud-sim` and keys jobs and tenants by
//! raw `u64`, so every layer above (workloads, core, bench, cli) can
//! speak tenancy without dependency cycles.

use std::collections::{BTreeMap, VecDeque};

use hcloud_sim::{SimDuration, SimTime};
use rand::Rng;

/// A typed tenant identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Queue lifecycle, modeled on Volcano's queue-state management.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueState {
    /// Full semantics: admit, borrow, preempt.
    #[default]
    Open,
    /// Drain mode: existing work runs, new work admits only up to the
    /// guarantee (no borrowing above it).
    Closing,
    /// Tenancy bypass: the tenant's jobs run untenanted (best effort,
    /// outside the pool), so a closed queue can never strand work.
    Closed,
}

impl QueueState {
    /// Stable wire name used by scenario JSON and reports.
    pub fn name(self) -> &'static str {
        match self {
            QueueState::Open => "open",
            QueueState::Closing => "closing",
            QueueState::Closed => "closed",
        }
    }

    /// Parse the wire name back; `None` for anything unrecognized.
    pub fn parse(s: &str) -> Option<QueueState> {
        match s {
            "open" => Some(QueueState::Open),
            "closing" => Some(QueueState::Closing),
            "closed" => Some(QueueState::Closed),
            _ => None,
        }
    }
}

/// One tenant's static share contract.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    pub id: TenantId,
    /// DRR weight; also sets the tenant's weighted fair share of the pool.
    pub weight: f64,
    /// Cores the tenant may always reach (its floor).
    pub guaranteed_cores: u32,
    /// Cores the tenant may never exceed (its ceiling).
    pub cap_cores: u32,
    pub state: QueueState,
}

impl TenantSpec {
    pub fn new(id: u64, weight: f64, guaranteed_cores: u32, cap_cores: u32) -> TenantSpec {
        TenantSpec {
            id: TenantId(id),
            weight,
            guaranteed_cores,
            cap_cores,
            state: QueueState::Open,
        }
    }

    pub fn with_state(mut self, state: QueueState) -> TenantSpec {
        self.state = state;
        self
    }
}

/// The static tenancy section of a scenario: tenant contracts, the
/// bounded logical pool they share, DRR/starvation tuning, and the
/// job→tenant assignment map.
#[derive(Debug, Clone, PartialEq)]
pub struct TenancyPlan {
    pub tenants: Vec<TenantSpec>,
    /// The bounded logical pool the tenants share, in cores. Tenanted
    /// admissions are gated against this bound; a guaranteed queue can
    /// only starve because the pool is finite.
    pub pool_cores: u32,
    /// DRR quantum in cores credited per round, scaled by weight.
    pub quantum: f64,
    /// How long a below-guarantee tenant's head job may wait before the
    /// starvation scan proposes preemption victims.
    pub starvation_secs: f64,
    /// Job id → tenant id. Unassigned jobs bypass tenancy.
    pub assignments: BTreeMap<u64, u64>,
}

impl TenancyPlan {
    pub fn new(pool_cores: u32) -> TenancyPlan {
        TenancyPlan {
            tenants: Vec::new(),
            pool_cores,
            quantum: 4.0,
            starvation_secs: 60.0,
            assignments: BTreeMap::new(),
        }
    }

    pub fn with_quantum(mut self, quantum: f64) -> TenancyPlan {
        self.quantum = quantum;
        self
    }

    pub fn with_starvation_secs(mut self, secs: f64) -> TenancyPlan {
        self.starvation_secs = secs;
        self
    }

    pub fn tenant(mut self, spec: TenantSpec) -> TenancyPlan {
        self.tenants.push(spec);
        self
    }

    /// Assign one job to one tenant (last assignment wins).
    pub fn assign(&mut self, job: u64, tenant: u64) {
        self.assignments.insert(job, tenant);
    }

    pub fn tenant_of(&self, job: u64) -> Option<TenantId> {
        self.assignments.get(&job).copied().map(TenantId)
    }

    /// Skewed-size tenant population: `n` tenants with Zipf weights
    /// `w_rank ∝ 1/rank^skew`. Guarantees split `guarantee_frac` of the
    /// pool proportionally to weight (≥1 core each); caps give every
    /// tenant 4× its guarantee of elastic headroom, clipped to the pool.
    /// Fully deterministic — scale it to thousands of tenants.
    pub fn zipf(n: usize, skew: f64, pool_cores: u32, guarantee_frac: f64) -> TenancyPlan {
        let mut plan = TenancyPlan::new(pool_cores);
        let total: f64 = (1..=n).map(|rank| 1.0 / (rank as f64).powf(skew)).sum();
        for rank in 1..=n {
            let weight = 1.0 / (rank as f64).powf(skew);
            let share = weight / total;
            let guaranteed = ((pool_cores as f64 * guarantee_frac * share).floor() as u32).max(1);
            let cap = guaranteed.saturating_mul(4).min(pool_cores);
            plan.tenants
                .push(TenantSpec::new(rank as u64 - 1, weight, guaranteed, cap));
        }
        plan
    }

    /// Assign jobs to tenants, weighted by tenant weight, from one
    /// seeded stream. Closed tenants still receive assignments — their
    /// jobs bypass the pool, which is exactly what `Closed` means.
    pub fn assign_jobs<R: Rng>(&mut self, jobs: &[u64], rng: &mut R) {
        if self.tenants.is_empty() {
            return;
        }
        let total: f64 = self.tenants.iter().map(|t| t.weight).sum();
        for &job in jobs {
            let mut pick = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
            let mut chosen = self.tenants[0].id.0;
            for t in &self.tenants {
                if pick < t.weight {
                    chosen = t.id.0;
                    break;
                }
                pick -= t.weight;
            }
            self.assignments.insert(job, chosen);
        }
    }

    /// Structural sanity; the scheduler and the CLI both refuse invalid
    /// plans up front rather than mis-accounting later.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for t in &self.tenants {
            if !t.weight.is_finite() || t.weight <= 0.0 {
                return Err(format!("tenant {}: weight must be finite and > 0", t.id));
            }
            if t.cap_cores < t.guaranteed_cores {
                return Err(format!(
                    "tenant {}: cap_cores {} < guaranteed_cores {}",
                    t.id, t.cap_cores, t.guaranteed_cores
                ));
            }
            if !seen.insert(t.id.0) {
                return Err(format!("duplicate tenant id {}", t.id));
            }
        }
        if self.pool_cores == 0 && !self.tenants.is_empty() {
            return Err("pool_cores must be > 0".into());
        }
        if !self.quantum.is_finite() || self.quantum <= 0.0 {
            return Err("quantum must be finite and > 0".into());
        }
        if !self.starvation_secs.is_finite() || self.starvation_secs <= 0.0 {
            return Err("starvation_secs must be finite and > 0".into());
        }
        for (&job, &tenant) in &self.assignments {
            if !seen.contains(&tenant) {
                return Err(format!("job {job} assigned to unknown tenant t{tenant}"));
            }
        }
        Ok(())
    }
}

/// One job waiting in a tenant queue.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingJob {
    job: u64,
    cores: u32,
    enqueued: SimTime,
}

/// One job the pool has admitted.
#[derive(Debug, Clone, Copy)]
struct RunningRec {
    tenant: u64,
    cores: u32,
    /// Monotone admission sequence; preemption evicts the most recently
    /// admitted borrower first.
    seq: u64,
    /// Whether this admission took the tenant above its guarantee.
    borrowed: bool,
}

/// Per-tenant lifetime counters, surfaced in `RunResult::tenant_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantStat {
    pub id: u64,
    pub weight: f64,
    pub guaranteed_cores: u32,
    pub cap_cores: u32,
    /// Jobs admitted into the pool (directly or via drain).
    pub admitted: u64,
    /// Jobs that had to wait in the tenant queue at least once.
    pub deferred: u64,
    /// Deferred jobs later released by the DRR drain.
    pub drained: u64,
    /// Admissions that took the tenant above its guarantee.
    pub borrowed_admissions: u64,
    /// This tenant's running jobs preempted as victims.
    pub victims: u64,
    /// Preemptions this tenant triggered to reclaim its guarantee.
    pub reclaims: u64,
    pub max_pending_depth: usize,
    pub total_queue_wait_secs: f64,
    pub peak_running_cores: u64,
}

/// One weighted tenant queue: the static contract plus live DRR state.
#[derive(Debug, Clone)]
pub struct TenantQueue {
    spec: TenantSpec,
    pending: VecDeque<PendingJob>,
    deficit: f64,
    running_cores: u64,
    stat: TenantStat,
}

impl TenantQueue {
    fn new(spec: TenantSpec) -> TenantQueue {
        let stat = TenantStat {
            id: spec.id.0,
            weight: spec.weight,
            guaranteed_cores: spec.guaranteed_cores,
            cap_cores: spec.cap_cores,
            ..TenantStat::default()
        };
        TenantQueue {
            spec,
            pending: VecDeque::new(),
            deficit: 0.0,
            running_cores: 0,
            stat,
        }
    }

    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    pub fn running_cores(&self) -> u64 {
        self.running_cores
    }

    pub fn pending_depth(&self) -> usize {
        self.pending.len()
    }

    /// Below-guarantee with work pending: the tenant is owed capacity.
    fn needy(&self) -> bool {
        self.spec.state != QueueState::Closed
            && self.running_cores < self.spec.guaranteed_cores as u64
            && !self.pending.is_empty()
    }

    fn note_admit(&mut self, cores: u32, borrowed: bool) {
        self.running_cores += cores as u64;
        self.stat.admitted += 1;
        if borrowed {
            self.stat.borrowed_admissions += 1;
        }
        self.stat.peak_running_cores = self.stat.peak_running_cores.max(self.running_cores);
    }
}

/// The verdict for one job at the tenancy gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Not tenanted (no assignment, or the tenant is `Closed`): the job
    /// proceeds untenanted and outside the pool.
    Bypass,
    /// Admitted into the pool.
    Admit { tenant: TenantId, borrowed: bool },
    /// Held in the tenant queue; `depth` is the queue depth after entry.
    Defer { tenant: TenantId, depth: usize },
}

/// One job released from a tenant queue by the DRR drain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Release {
    pub job: u64,
    pub tenant: TenantId,
    pub cores: u32,
    pub waited: SimDuration,
    pub borrowed: bool,
}

/// One preemption proposal from the starvation scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Preemption {
    pub victim_job: u64,
    pub victim_tenant: TenantId,
    pub starved_tenant: TenantId,
    pub cores: u32,
}

/// The weighted fair-share runtime: every tenant queue plus the pool
/// ledger. The scheduler is the single driver — it gates arrivals,
/// reports releases, drains after capacity frees, and executes the
/// preemptions the starvation scan proposes.
#[derive(Debug, Clone)]
pub struct FairShare {
    tenants: BTreeMap<u64, TenantQueue>,
    assignments: BTreeMap<u64, u64>,
    running: BTreeMap<u64, RunningRec>,
    /// DRR rotation order (tenant ids); the cursor persists across
    /// drains so no tenant is structurally favored.
    order: Vec<u64>,
    cursor: usize,
    pool_cores: u64,
    total_running: u64,
    quantum: f64,
    starvation: SimDuration,
    admit_seq: u64,
}

impl FairShare {
    pub fn new(plan: &TenancyPlan) -> FairShare {
        let mut tenants = BTreeMap::new();
        let mut order = Vec::with_capacity(plan.tenants.len());
        for spec in &plan.tenants {
            order.push(spec.id.0);
            tenants.insert(spec.id.0, TenantQueue::new(spec.clone()));
        }
        FairShare {
            tenants,
            assignments: plan.assignments.clone(),
            running: BTreeMap::new(),
            order,
            cursor: 0,
            pool_cores: plan.pool_cores as u64,
            total_running: 0,
            quantum: plan.quantum,
            starvation: SimDuration::from_secs_f64(plan.starvation_secs),
            admit_seq: 0,
        }
    }

    /// The tenant a job is assigned to, `None` if untenanted.
    pub fn tenant_of(&self, job: u64) -> Option<TenantId> {
        self.assignments.get(&job).copied().map(TenantId)
    }

    pub fn pool_cores(&self) -> u64 {
        self.pool_cores
    }

    pub fn total_running(&self) -> u64 {
        self.total_running
    }

    pub fn queue(&self, tenant: TenantId) -> Option<&TenantQueue> {
        self.tenants.get(&tenant.0)
    }

    /// A tenant's weighted fair share of the pool, over non-closed
    /// tenants.
    pub fn fair_share(&self, tenant: TenantId) -> f64 {
        let total: f64 = self
            .tenants
            .values()
            .filter(|q| q.spec.state != QueueState::Closed)
            .map(|q| q.spec.weight)
            .sum();
        match self.tenants.get(&tenant.0) {
            Some(q) if total > 0.0 => self.pool_cores as f64 * q.spec.weight / total,
            _ => 0.0,
        }
    }

    /// Whether any tenant is below guarantee with work pending; while
    /// true, the pool grants no new borrows.
    fn any_needy(&self) -> bool {
        self.tenants.values().any(|q| q.needy())
    }

    /// Gate one arriving (or re-arriving) job. Admission requires cap
    /// room, pool room, and — when it would be a borrow — an idle pool
    /// (state `Open`, no needy tenant). Anything else defers the job
    /// into its tenant queue, FIFO.
    pub fn gate(&mut self, job: u64, cores: u32, now: SimTime) -> Gate {
        let Some(&tid) = self.assignments.get(&job) else {
            return Gate::Bypass;
        };
        let any_needy = self.any_needy();
        let Some(q) = self.tenants.get_mut(&tid) else {
            return Gate::Bypass;
        };
        if q.spec.state == QueueState::Closed {
            return Gate::Bypass;
        }
        // A job the contract can structurally never hold (wider than the
        // tenant's cap or the whole pool) runs untenanted: deferring it
        // would wedge the queue head forever and strand the job.
        if cores as u64 > q.spec.cap_cores as u64 || cores as u64 > self.pool_cores {
            return Gate::Bypass;
        }
        // Likewise a closing queue with no guarantee: it never borrows,
        // so it could never admit anything — every deferral would be
        // permanent.
        if q.spec.state == QueueState::Closing && q.spec.guaranteed_cores == 0 {
            return Gate::Bypass;
        }
        let borrowed = q.running_cores >= q.spec.guaranteed_cores as u64;
        let cap_ok = q.running_cores + cores as u64 <= q.spec.cap_cores as u64;
        let pool_ok = self.total_running + cores as u64 <= self.pool_cores;
        let borrow_ok = !borrowed || (q.spec.state == QueueState::Open && !any_needy);
        // FIFO within the queue: once anything is pending, later jobs
        // line up behind it rather than jumping the gate.
        if cap_ok && pool_ok && borrow_ok && q.pending.is_empty() {
            q.note_admit(cores, borrowed);
            self.total_running += cores as u64;
            self.admit_seq += 1;
            self.running.insert(
                job,
                RunningRec {
                    tenant: tid,
                    cores,
                    seq: self.admit_seq,
                    borrowed,
                },
            );
            Gate::Admit {
                tenant: TenantId(tid),
                borrowed,
            }
        } else {
            q.pending.push_back(PendingJob {
                job,
                cores,
                enqueued: now,
            });
            q.stat.deferred += 1;
            q.stat.max_pending_depth = q.stat.max_pending_depth.max(q.pending.len());
            Gate::Defer {
                tenant: TenantId(tid),
                depth: q.pending.len(),
            }
        }
    }

    /// A tenanted job left the pool (finished, or was preempted).
    /// Returns its tenant; `None` for untenanted/bypassed jobs.
    pub fn release(&mut self, job: u64) -> Option<TenantId> {
        let rec = self.running.remove(&job)?;
        if let Some(q) = self.tenants.get_mut(&rec.tenant) {
            q.running_cores = q.running_cores.saturating_sub(rec.cores as u64);
        }
        self.total_running = self.total_running.saturating_sub(rec.cores as u64);
        Some(TenantId(rec.tenant))
    }

    /// Forget a job that never reached the pool (it is leaving the
    /// system from a tenant queue). Returns true if it was pending.
    pub fn cancel_pending(&mut self, job: u64) -> bool {
        for q in self.tenants.values_mut() {
            if let Some(pos) = q.pending.iter().position(|p| p.job == job) {
                q.pending.remove(pos);
                return true;
            }
        }
        false
    }

    /// Deficit-round-robin drain: hand freed capacity to tenant queues.
    ///
    /// Pass 1 serves below-guarantee tenants in DRR order (deficit grows
    /// by `quantum × weight` per round; a head job releases while the
    /// deficit covers its cores). Pass 2 lets `Open` tenants borrow the
    /// remainder — only if nobody is still needy. Stops when a full
    /// cycle releases nothing.
    pub fn drain(&mut self, now: SimTime) -> Vec<Release> {
        let mut out = Vec::new();
        // Pass 1: guarantees.
        loop {
            let mut progressed = false;
            for i in 0..self.order.len() {
                let tid = self.order[(self.cursor + i) % self.order.len()];
                let q = self.tenants.get_mut(&tid).expect("order tracks tenants");
                if !q.needy() {
                    continue;
                }
                q.deficit += self.quantum * q.spec.weight;
                while let Some(&head) = q.pending.front() {
                    let under = q.running_cores < q.spec.guaranteed_cores as u64;
                    let fits_pool = self.total_running + head.cores as u64 <= self.pool_cores;
                    let fits_cap = q.running_cores + head.cores as u64 <= q.spec.cap_cores as u64;
                    if !(under && fits_pool && fits_cap && q.deficit >= head.cores as f64) {
                        break;
                    }
                    q.pending.pop_front();
                    q.deficit -= head.cores as f64;
                    q.note_admit(head.cores, false);
                    q.stat.drained += 1;
                    let waited = now.saturating_since(head.enqueued);
                    q.stat.total_queue_wait_secs += waited.as_secs_f64();
                    self.total_running += head.cores as u64;
                    self.admit_seq += 1;
                    self.running.insert(
                        head.job,
                        RunningRec {
                            tenant: tid,
                            cores: head.cores,
                            seq: self.admit_seq,
                            borrowed: false,
                        },
                    );
                    out.push(Release {
                        job: head.job,
                        tenant: TenantId(tid),
                        cores: head.cores,
                        waited,
                        borrowed: false,
                    });
                    progressed = true;
                }
                if q.pending.is_empty() {
                    q.deficit = 0.0;
                }
            }
            if !progressed {
                break;
            }
        }
        if !self.order.is_empty() {
            self.cursor = (self.cursor + 1) % self.order.len();
        }
        // Pass 2: elastic borrowing of whatever is left.
        loop {
            if self.any_needy() {
                break;
            }
            let mut progressed = false;
            for i in 0..self.order.len() {
                let tid = self.order[(self.cursor + i) % self.order.len()];
                let q = self.tenants.get_mut(&tid).expect("order tracks tenants");
                if q.spec.state != QueueState::Open {
                    continue;
                }
                let Some(&head) = q.pending.front() else {
                    continue;
                };
                let fits_pool = self.total_running + head.cores as u64 <= self.pool_cores;
                let fits_cap = q.running_cores + head.cores as u64 <= q.spec.cap_cores as u64;
                if !(fits_pool && fits_cap) {
                    continue;
                }
                q.pending.pop_front();
                let borrowed = q.running_cores >= q.spec.guaranteed_cores as u64;
                q.note_admit(head.cores, borrowed);
                q.stat.drained += 1;
                let waited = now.saturating_since(head.enqueued);
                q.stat.total_queue_wait_secs += waited.as_secs_f64();
                self.total_running += head.cores as u64;
                self.admit_seq += 1;
                self.running.insert(
                    head.job,
                    RunningRec {
                        tenant: tid,
                        cores: head.cores,
                        seq: self.admit_seq,
                        borrowed,
                    },
                );
                out.push(Release {
                    job: head.job,
                    tenant: TenantId(tid),
                    cores: head.cores,
                    waited,
                    borrowed,
                });
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Starvation scan: if a below-guarantee tenant's head job has
    /// waited past the starvation window, propose victims — borrowed
    /// jobs first (largest borrower, most recently admitted first),
    /// then jobs of tenants above their weighted fair share (never
    /// driving a victim below its own guarantee). The scheduler must
    /// preempt each proposed job and report it back via [`release`],
    /// then [`drain`] to hand the freed cores to the starved queue.
    ///
    /// [`release`]: FairShare::release
    /// [`drain`]: FairShare::drain
    pub fn starved_victims(&mut self, now: SimTime) -> Vec<Preemption> {
        let mut starved: Vec<(u64, u64)> = Vec::new(); // (tenant, needed cores)
        for q in self.tenants.values() {
            if !q.needy() {
                continue;
            }
            let head = q.pending.front().expect("needy implies pending");
            if now.saturating_since(head.enqueued) >= self.starvation {
                starved.push((q.spec.id.0, head.cores as u64));
            }
        }
        if starved.is_empty() {
            return Vec::new();
        }
        let needed: u64 = starved.iter().map(|&(_, n)| n).sum();
        let starved_ids: std::collections::BTreeSet<u64> =
            starved.iter().map(|&(t, _)| t).collect();

        // Candidate pass 1: borrowed jobs, keyed for ordering.
        let mut borrowed: Vec<(f64, u64, u64, u32, u64)> = Vec::new(); // (borrow, seq, job, cores, tenant)
        for (&job, rec) in &self.running {
            if !rec.borrowed || starved_ids.contains(&rec.tenant) {
                continue;
            }
            let q = &self.tenants[&rec.tenant];
            let over = q.running_cores as f64 - q.spec.guaranteed_cores as f64;
            if over <= 0.0 {
                continue;
            }
            borrowed.push((over, rec.seq, job, rec.cores, rec.tenant));
        }
        borrowed.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.1.cmp(&a.1))
        });

        let mut victims = Vec::new();
        let mut freed = 0u64;
        // Track how far each victim tenant has been drawn down so one
        // scan never over-preempts a single tenant.
        let mut drawn: BTreeMap<u64, u64> = BTreeMap::new();
        let first_starved = TenantId(starved[0].0);
        for (_, _, job, cores, tenant) in &borrowed {
            if freed >= needed {
                break;
            }
            let q = &self.tenants[tenant];
            let remaining = q.running_cores - drawn.get(tenant).copied().unwrap_or(0);
            if remaining <= q.spec.guaranteed_cores as u64 {
                continue;
            }
            victims.push(Preemption {
                victim_job: *job,
                victim_tenant: TenantId(*tenant),
                starved_tenant: first_starved,
                cores: *cores,
            });
            *drawn.entry(*tenant).or_insert(0) += *cores as u64;
            freed += *cores as u64;
        }
        if freed < needed {
            // Candidate pass 2: tenants above weighted fair share.
            let mut over_share: Vec<(f64, u64, u64, u32, u64)> = Vec::new();
            for (&job, rec) in &self.running {
                if starved_ids.contains(&rec.tenant) || victims.iter().any(|v| v.victim_job == job)
                {
                    continue;
                }
                let q = &self.tenants[&rec.tenant];
                let share = self.fair_share(TenantId(rec.tenant));
                let over = q.running_cores as f64 - share;
                if over <= 0.0 {
                    continue;
                }
                over_share.push((over, rec.seq, job, rec.cores, rec.tenant));
            }
            over_share.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.1.cmp(&a.1))
            });
            for (_, _, job, cores, tenant) in &over_share {
                if freed >= needed {
                    break;
                }
                let q = &self.tenants[tenant];
                let remaining = q.running_cores - drawn.get(tenant).copied().unwrap_or(0);
                // Never drive a victim below its own guarantee.
                if remaining.saturating_sub(*cores as u64) < q.spec.guaranteed_cores as u64 {
                    continue;
                }
                victims.push(Preemption {
                    victim_job: *job,
                    victim_tenant: TenantId(*tenant),
                    starved_tenant: first_starved,
                    cores: *cores,
                });
                *drawn.entry(*tenant).or_insert(0) += *cores as u64;
                freed += *cores as u64;
            }
        }
        if !victims.is_empty() {
            for &(tid, _) in &starved {
                if let Some(q) = self.tenants.get_mut(&tid) {
                    q.stat.reclaims += 1;
                }
            }
            for v in &victims {
                if let Some(q) = self.tenants.get_mut(&v.victim_tenant.0) {
                    q.stat.victims += 1;
                }
            }
        }
        victims
    }

    /// Per-tenant lifetime counters, ascending by tenant id.
    pub fn stats(&self) -> Vec<TenantStat> {
        self.tenants.values().map(|q| q.stat).collect()
    }
}

/// Jain's fairness index over per-tenant allocations:
/// `(Σx)² / (n · Σx²)` — 1.0 is perfectly fair, `1/n` maximally unfair.
pub fn jain(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan3() -> TenancyPlan {
        // 16-core pool: a heavy tenant (guar 8, cap 16), a light tenant
        // (guar 4, cap 8), a best-effort tenant (guar 2, cap 16).
        TenancyPlan::new(16)
            .with_quantum(4.0)
            .with_starvation_secs(30.0)
            .tenant(TenantSpec::new(0, 4.0, 8, 16))
            .tenant(TenantSpec::new(1, 2.0, 4, 8))
            .tenant(TenantSpec::new(2, 1.0, 2, 16))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn unassigned_jobs_bypass() {
        let mut fs = FairShare::new(&plan3());
        assert_eq!(fs.gate(99, 4, t(0)), Gate::Bypass);
        assert_eq!(fs.release(99), None);
        assert_eq!(fs.total_running(), 0);
    }

    #[test]
    fn closed_tenants_bypass() {
        let mut plan = plan3();
        plan.tenants[2].state = QueueState::Closed;
        plan.assign(1, 2);
        let mut fs = FairShare::new(&plan);
        assert_eq!(fs.gate(1, 4, t(0)), Gate::Bypass);
    }

    #[test]
    fn structurally_oversized_jobs_bypass() {
        let mut plan = plan3();
        plan.assign(1, 1); // tenant 1: cap 8
        plan.assign(2, 0); // tenant 0: cap 16 = pool
        let mut fs = FairShare::new(&plan);
        // Wider than the tenant's cap: deferring would wedge the queue.
        assert_eq!(fs.gate(1, 9, t(0)), Gate::Bypass);
        // Wider than the whole pool.
        assert_eq!(fs.gate(2, 17, t(0)), Gate::Bypass);
        assert_eq!(fs.total_running(), 0);
    }

    #[test]
    fn closing_tenants_without_guarantee_bypass() {
        // A closing queue never borrows, and with guarantee 0 every
        // admission would be a borrow — deferral would strand the job
        // forever, so the gate must route it around the pool.
        let mut plan = plan3();
        plan.tenants[2].state = QueueState::Closing;
        plan.tenants[2].guaranteed_cores = 0;
        plan.assign(1, 2);
        let mut fs = FairShare::new(&plan);
        assert_eq!(fs.gate(1, 4, t(0)), Gate::Bypass);
        assert_eq!(fs.total_running(), 0);
    }

    #[test]
    fn admission_within_guarantee() {
        let mut plan = plan3();
        plan.assign(1, 0);
        let mut fs = FairShare::new(&plan);
        assert_eq!(
            fs.gate(1, 4, t(0)),
            Gate::Admit {
                tenant: TenantId(0),
                borrowed: false
            }
        );
        assert_eq!(fs.total_running(), 4);
        assert_eq!(fs.release(1), Some(TenantId(0)));
        assert_eq!(fs.total_running(), 0);
    }

    #[test]
    fn cap_defers() {
        let mut plan = plan3();
        for j in 0..3 {
            plan.assign(j, 1); // tenant 1: cap 8
        }
        let mut fs = FairShare::new(&plan);
        assert!(matches!(fs.gate(0, 4, t(0)), Gate::Admit { .. }));
        assert!(matches!(fs.gate(1, 4, t(0)), Gate::Admit { .. }));
        assert_eq!(
            fs.gate(2, 4, t(0)),
            Gate::Defer {
                tenant: TenantId(1),
                depth: 1
            }
        );
    }

    #[test]
    fn borrowing_allowed_only_while_nobody_is_needy() {
        let mut plan = plan3();
        plan.assign(0, 2);
        plan.assign(1, 2);
        plan.assign(2, 0);
        plan.assign(3, 0);
        let mut fs = FairShare::new(&plan);
        // Tenant 2 (guar 2) borrows up to 8 cores while the pool idles.
        assert!(matches!(
            fs.gate(0, 4, t(0)),
            Gate::Admit {
                borrowed: false,
                ..
            }
        ));
        assert_eq!(
            fs.gate(1, 4, t(0)),
            Gate::Admit {
                tenant: TenantId(2),
                borrowed: true
            }
        );
        // Tenant 0 fills most of the rest of the pool (8 of 16 left).
        assert!(matches!(fs.gate(2, 8, t(1)), Gate::Admit { .. }));
        // Tenant 0 now wants more but the pool is full -> it defers and
        // becomes needy; further borrow attempts by tenant 2 defer.
        assert!(matches!(fs.gate(3, 4, t(1)), Gate::Defer { .. }));
        plan.assign(4, 2);
        fs.assignments.insert(4, 2);
        assert!(matches!(fs.gate(4, 1, t(2)), Gate::Defer { .. }));
    }

    #[test]
    fn drain_serves_guarantees_before_borrowers() {
        let mut plan = plan3();
        for j in 0..6 {
            plan.assign(j, if j < 4 { 2 } else { 0 });
        }
        let mut fs = FairShare::new(&plan);
        // Tenant 2 fills the pool: 4 jobs x 4 cores = 16.
        for j in 0..4 {
            assert!(matches!(fs.gate(j, 4, t(0)), Gate::Admit { .. }));
        }
        // Tenant 0 (guar 8) defers twice.
        assert!(matches!(fs.gate(4, 4, t(0)), Gate::Defer { .. }));
        assert!(matches!(fs.gate(5, 4, t(0)), Gate::Defer { .. }));
        // Two tenant-2 jobs finish; drain must hand both slots to
        // tenant 0 (under guarantee), not back to tenant 2.
        fs.release(0);
        fs.release(1);
        let released = fs.drain(t(10));
        let jobs: Vec<u64> = released.iter().map(|r| r.job).collect();
        assert_eq!(jobs, vec![4, 5]);
        assert!(released.iter().all(|r| r.tenant == TenantId(0)));
        assert!(released.iter().all(|r| !r.borrowed));
        assert_eq!(released[0].waited, SimDuration::from_secs(10));
    }

    #[test]
    fn drain_lets_open_tenants_borrow_leftovers() {
        let mut plan = plan3();
        plan.assign(0, 2);
        plan.assign(1, 2);
        plan.assign(2, 2);
        let mut fs = FairShare::new(&plan);
        assert!(matches!(fs.gate(0, 8, t(0)), Gate::Admit { .. }));
        assert!(matches!(fs.gate(1, 8, t(0)), Gate::Admit { .. })); // pool full
        assert!(matches!(fs.gate(2, 4, t(0)), Gate::Defer { .. }));
        fs.release(0);
        let released = fs.drain(t(5));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].job, 2);
        assert!(
            released[0].borrowed,
            "tenant 2 is above its 2-core guarantee"
        );
    }

    #[test]
    fn closing_tenants_never_borrow() {
        let mut plan = plan3();
        plan.tenants[2].state = QueueState::Closing;
        plan.assign(0, 2);
        plan.assign(1, 2);
        let mut fs = FairShare::new(&plan);
        // First two cores are under guarantee.
        assert!(matches!(
            fs.gate(0, 2, t(0)),
            Gate::Admit {
                borrowed: false,
                ..
            }
        ));
        // Above guarantee would be a borrow: a closing queue defers.
        assert!(matches!(fs.gate(1, 2, t(0)), Gate::Defer { .. }));
        // While the guarantee is occupied, the drain must not borrow
        // for a closing queue either.
        assert!(fs.drain(t(1)).is_empty());
        // Once below guarantee again, the deferred job drains within
        // the guarantee — that is what drain mode means.
        fs.release(0);
        let released = fs.drain(t(2));
        assert_eq!(released.len(), 1);
        assert!(!released[0].borrowed);
    }

    #[test]
    fn starvation_preempts_borrowers_first_most_recent_first() {
        let mut plan = plan3().with_starvation_secs(30.0);
        for j in 0..4 {
            plan.assign(j, 2);
        }
        plan.assign(4, 0);
        let mut fs = FairShare::new(&plan);
        // Tenant 2 (guar 2) fills the pool with 4x4: jobs 2,3 are
        // borrowed (usage 8->16 > guar 2... all but the first are).
        for j in 0..4 {
            fs.gate(j, 4, t(j));
        }
        // Tenant 0 arrives needing 8 cores; defers at t=100.
        assert!(matches!(fs.gate(4, 8, t(100)), Gate::Defer { .. }));
        // Before the window elapses: no victims.
        assert!(fs.starved_victims(t(120)).is_empty());
        // After it: borrowed victims, most recently admitted first.
        let victims = fs.starved_victims(t(131));
        assert_eq!(victims.len(), 2, "8 cores needed, 4-core victims");
        assert_eq!(victims[0].victim_job, 3, "most recent borrower first");
        assert_eq!(victims[1].victim_job, 2);
        assert_eq!(victims[0].starved_tenant, TenantId(0));
        assert_eq!(victims[0].victim_tenant, TenantId(2));
        // Scheduler executes: release victims, drain, re-gate victims.
        for v in &victims {
            assert_eq!(fs.release(v.victim_job), Some(TenantId(2)));
        }
        let released = fs.drain(t(131));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].job, 4, "the starved head reclaims the cores");
        // The preempted jobs re-enter via the gate and defer: tenant 2
        // is above guarantee and the pool is full again.
        assert!(matches!(fs.gate(3, 4, t(131)), Gate::Defer { .. }));
        let stats = fs.stats();
        assert_eq!(stats[0].reclaims, 1);
        assert_eq!(stats[2].victims, 2);
    }

    #[test]
    fn starvation_never_victimizes_below_guarantee() {
        // Tenant 1 sits exactly at its guarantee: preempting it would
        // break the floor, so the scan must come up empty-handed.
        let mut plan = plan3().with_starvation_secs(10.0);
        plan.assign(0, 1);
        plan.assign(1, 0);
        let mut fs = FairShare::new(&plan);
        assert!(matches!(fs.gate(0, 4, t(0)), Gate::Admit { .. })); // t1 at guar
                                                                    // Tenant 0 wants 16 (> remaining 12): defers, starves.
        assert!(matches!(fs.gate(1, 16, t(0)), Gate::Defer { .. }));
        assert!(fs.starved_victims(t(60)).is_empty());
    }

    #[test]
    fn over_share_pass_respects_guarantee_floor() {
        // Tenant 0 runs above its fair share but its jobs are not
        // borrow-flagged (admitted under guarantee); the over-share
        // pass may take it down to — but not below — its guarantee.
        let plan = TenancyPlan::new(12)
            .with_starvation_secs(10.0)
            .tenant(TenantSpec::new(0, 1.0, 8, 12))
            .tenant(TenantSpec::new(1, 1.0, 6, 12));
        let mut fs = FairShare::new(&plan);
        fs.assignments.insert(0, 0);
        fs.assignments.insert(1, 0);
        fs.assignments.insert(2, 1);
        assert!(matches!(fs.gate(0, 4, t(0)), Gate::Admit { .. }));
        assert!(matches!(fs.gate(1, 4, t(0)), Gate::Admit { .. }));
        // Tenant 1 (guar 6) wants 6, pool has 4 left -> starves.
        assert!(matches!(fs.gate(2, 6, t(0)), Gate::Defer { .. }));
        let victims = fs.starved_victims(t(30));
        // Fair share is 6 each; tenant 0 runs 8 > 6, but preempting one
        // 4-core job leaves 4 < 8 guarantee — so no victim qualifies.
        assert!(victims.is_empty());
    }

    #[test]
    fn zipf_plan_is_deterministic_and_valid() {
        let a = TenancyPlan::zipf(2000, 1.1, 4096, 0.6);
        let b = TenancyPlan::zipf(2000, 1.1, 4096, 0.6);
        assert_eq!(a, b);
        assert_eq!(a.tenants.len(), 2000);
        a.validate().expect("zipf plans validate");
        // Skew: rank 1 outweighs rank 2000.
        assert!(a.tenants[0].weight > a.tenants[1999].weight * 100.0);
        assert!(a.tenants.iter().all(|t| t.cap_cores >= t.guaranteed_cores));
        assert!(a.tenants.iter().all(|t| t.guaranteed_cores >= 1));
    }

    #[test]
    fn weighted_assignment_follows_weights() {
        use hcloud_sim::rng::RngFactory;
        let mut plan = TenancyPlan::new(64)
            .tenant(TenantSpec::new(0, 9.0, 8, 64))
            .tenant(TenantSpec::new(1, 1.0, 8, 64));
        let jobs: Vec<u64> = (0..2000).collect();
        let mut rng = RngFactory::new(7).stream("tenancy.assign");
        plan.assign_jobs(&jobs, &mut rng);
        let heavy = plan.assignments.values().filter(|&&t| t == 0).count();
        assert!(
            (1600..2000).contains(&heavy),
            "~90% of jobs should land on the 9x tenant, got {heavy}/2000"
        );
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let bad = TenancyPlan::new(16).tenant(TenantSpec::new(0, 0.0, 4, 8));
        assert!(bad.validate().is_err(), "zero weight");
        let bad = TenancyPlan::new(16).tenant(TenantSpec::new(0, 1.0, 8, 4));
        assert!(bad.validate().is_err(), "cap below guarantee");
        let bad = TenancyPlan::new(16)
            .tenant(TenantSpec::new(0, 1.0, 4, 8))
            .tenant(TenantSpec::new(0, 1.0, 4, 8));
        assert!(bad.validate().is_err(), "duplicate id");
        let mut bad = TenancyPlan::new(16).tenant(TenantSpec::new(0, 1.0, 4, 8));
        bad.assign(1, 7);
        assert!(bad.validate().is_err(), "assignment to unknown tenant");
        let good = plan3();
        assert!(good.validate().is_ok());
    }

    #[test]
    fn jain_index_bounds() {
        assert!((jain(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert!((jain(&[]) - 1.0).abs() < 1e-12);
        assert!((jain(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cancel_pending_forgets_queued_jobs() {
        let mut plan = plan3();
        plan.assign(0, 1);
        plan.assign(1, 1);
        plan.assign(2, 1);
        let mut fs = FairShare::new(&plan);
        fs.gate(0, 8, t(0)); // fills cap
        assert!(matches!(fs.gate(1, 4, t(0)), Gate::Defer { .. }));
        assert!(fs.cancel_pending(1));
        assert!(!fs.cancel_pending(1));
        assert_eq!(fs.queue(TenantId(1)).unwrap().pending_depth(), 0);
    }

    #[test]
    fn state_names_round_trip() {
        for s in [QueueState::Open, QueueState::Closing, QueueState::Closed] {
            assert_eq!(QueueState::parse(s.name()), Some(s));
        }
        assert_eq!(QueueState::parse("draining"), None);
    }
}
