//! A shared cluster with three tenant classes over one provisioned pool:
//!
//! * **production** — high weight, the whole pool guaranteed;
//! * **batch** — medium weight, no guarantee, borrows elastic headroom;
//! * **scavenger** — weight 1, no guarantee, takes whatever is left.
//!
//! The opening move is deliberate abuse: a scavenger job squats the
//! entire pool before production's job arrives, so the guaranteed queue
//! starves. The starvation monitor must evict the borrower — the
//! preempted work re-enters the fault-requeue path with its executed
//! core-seconds carried over — and the fairness report at the end shows
//! the reclaim alongside each class's admissions, deferrals and waits.
//!
//! ```text
//! cargo run --release --example multi_tenant_cluster
//! ```

use hcloud::{
    runner::{run_scenario, AuditViolation, RunCtx},
    RunConfig, StrategyKind,
};
use hcloud_sim::rng::{RngFactory, SimRng};
use hcloud_sim::SimTime;
use hcloud_tenancy::{TenancyPlan, TenantSpec};
use hcloud_workloads::{AppClass, JobId, JobKind, JobSpec, Scenario, ScenarioConfig, ScenarioKind};

/// Jobs at or above this normalized performance kept their SLO.
const SLO_THRESHOLD: f64 = 0.7;

/// Display names for the three tenant classes, indexed by tenant id.
const CLASSES: [&str; 3] = ["production", "batch", "scavenger"];

/// A deterministic batch job (sensitivity seeded by job id, so the run
/// is reproducible without a scenario generator).
fn batch_job(id: u64, arrival_secs: u64, cores: u32, secs: f64) -> JobSpec {
    let mut rng = SimRng::from_seed_u64(id);
    JobSpec {
        id: JobId(id),
        class: AppClass::SparkBatch,
        arrival: SimTime::from_secs(arrival_secs),
        kind: JobKind::Batch {
            work_core_secs: cores as f64 * secs,
        },
        cores,
        sensitivity: AppClass::SparkBatch.sample_sensitivity(&mut rng),
    }
}

fn main() -> Result<(), AuditViolation> {
    // The contended pair arrives at t=0: job 0 (scavenger) squats the
    // pool, job 1 (production) is guaranteed the whole pool and starves
    // behind it. Later traffic exercises the weighted round-robin.
    let mut jobs = vec![batch_job(0, 0, 4, 2_000.0), batch_job(1, 0, 4, 2_000.0)];
    for i in 0..6u64 {
        jobs.push(batch_job(2 + i, 600 + 40 * i, 4, 240.0)); // batch class
        jobs.push(batch_job(8 + i, 620 + 40 * i, 4, 120.0)); // scavenger class
    }

    // Without profiling the scheduler sizes jobs by user reservation;
    // size the pool so one contended job fits alone but never both.
    let pool = jobs[..2]
        .iter()
        .map(|j| j.user_sized_cores().clamp(1, 16))
        .max()
        .expect("contended pair present");
    let mut plan = TenancyPlan::new(pool)
        .with_quantum(16.0)
        .with_starvation_secs(30.0)
        .tenant(TenantSpec::new(0, 8.0, pool, pool))
        .tenant(TenantSpec::new(1, 2.0, 0, pool))
        .tenant(TenantSpec::new(2, 1.0, 0, pool));
    plan.assign(0, 2); // the squatter
    plan.assign(1, 0); // the starved guaranteed job
    for i in 0..6u64 {
        plan.assign(2 + i, 1);
        plan.assign(8 + i, 2);
    }
    plan.validate().expect("well-formed plan");

    let scenario =
        Scenario::from_jobs(ScenarioConfig::scaled(ScenarioKind::Static, 0.05, 30), jobs)
            .with_tenancy(plan.clone());
    println!(
        "shared cluster: {} jobs, 3 tenant classes, {pool}-core pool\n",
        scenario.jobs().len()
    );

    // Plenty of physical cores: the tenancy gate, not the fleet, is the
    // contended resource here.
    let mut config = RunConfig::new(StrategyKind::StaticReserved).without_profiling();
    config.reserved_cores_override = Some(32);
    let factory = RngFactory::new(7);
    let result = run_scenario(&scenario, &config, &RunCtx::new(&factory))?;

    // Per-tenant SLO attainment, keyed by the plan's job assignments.
    let mut slo: [(usize, usize); 3] = [(0, 0); 3];
    for o in &result.outcomes {
        if let Some(tid) = plan.tenant_of(o.id.0) {
            let e = &mut slo[tid.0 as usize];
            e.1 += 1;
            if o.normalized_perf >= SLO_THRESHOLD {
                e.0 += 1;
            }
        }
    }

    println!(
        "Fairness report ({} jobs finished):\n",
        result.outcomes.len()
    );
    println!(
        "{:<12} {:>6} {:>5} {:>4} {:>9} {:>9} {:>9} {:>7} {:>9} {:>8} {:>9}",
        "class",
        "weight",
        "guar",
        "cap",
        "admitted",
        "deferred",
        "borrowed",
        "SLO",
        "wait (s)",
        "victims",
        "reclaims"
    );
    for s in &result.tenant_stats {
        let (kept, ran) = slo[s.id as usize];
        let mean_wait = s.total_queue_wait_secs / (s.drained.max(1) as f64);
        println!(
            "{:<12} {:>6.1} {:>5} {:>4} {:>9} {:>9} {:>9} {:>6.0}% {:>9.0} {:>8} {:>9}",
            CLASSES[s.id as usize],
            s.weight,
            s.guaranteed_cores,
            s.cap_cores,
            s.admitted,
            s.deferred,
            s.borrowed_admissions,
            kept as f64 / ran.max(1) as f64 * 100.0,
            mean_wait,
            s.victims,
            s.reclaims,
        );
    }
    let c = &result.counters;
    println!(
        "\nJain fairness over admissions: {:.3} (weighted shares, not head-count)",
        result.tenant_admission_fairness()
    );
    println!(
        "gate activity: {} deferrals, {} drains, {} elastic borrows, {} preemptions",
        c.tenant_deferred_jobs,
        c.tenant_drained_jobs,
        c.tenant_borrowed_admissions,
        c.tenant_preemptions,
    );
    println!("\nThe scavenger squatter was evicted after production starved for 30s;");
    println!("its executed core-seconds carried over when it re-queued, so nothing");
    println!(
        "was double-billed ({:.0} core-s re-run, makespan {:.1} min).",
        c.work_lost_core_secs,
        result.makespan.as_mins_f64()
    );
    Ok(())
}
