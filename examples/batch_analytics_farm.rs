//! An analytics farm: a batch-only, extremely bursty workload (nightly
//! ETL surges), where the interesting question is pure cost — how much
//! does each provisioning strategy pay per unit of useful work?
//!
//! ```text
//! cargo run --release --example batch_analytics_farm
//! ```

use hcloud::{
    runner::{run_scenario, AuditViolation, RunCtx},
    RunConfig, StrategyKind,
};
use hcloud_pricing::{commitment_cost, PricingModel, Rates, ReservedOnDemandPricing};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::{SimDuration, SimTime};
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};

fn main() -> Result<(), AuditViolation> {
    let factory = RngFactory::new(123);

    // Batch-only: the sensitive-fraction override with fraction 0 keeps
    // memcached out entirely.
    let mut config = ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.25, 45);
    config.sensitive_fraction = Some(0.0);
    let scenario = Scenario::generate(config, &factory);
    let work_core_hours: f64 = scenario
        .jobs()
        .iter()
        .map(|j| j.cores as f64 * j.ideal_duration().as_hours_f64())
        .sum();
    println!(
        "analytics farm: {} batch jobs, {:.0} core-hours of work\n",
        scenario.jobs().len(),
        work_core_hours
    );

    let rates = Rates::default();
    let pricing = PricingModel::aws();
    let reserved_pricing = ReservedOnDemandPricing::default();
    println!(
        "{:<8} {:>10} {:>12} {:>16} {:>20}",
        "strategy", "perf", "run cost", "$/core-hour", "26-week deployment"
    );
    for strategy in StrategyKind::ALL {
        let result = run_scenario(&scenario, &RunConfig::new(strategy), &RunCtx::new(&factory))?;
        let cost = result.cost(&rates, &pricing).total();
        let long = commitment_cost(
            &result.usage_records,
            &rates,
            &reserved_pricing,
            result.makespan.saturating_since(SimTime::ZERO),
            SimDuration::from_hours(26 * 7 * 24),
        );
        println!(
            "{:<8} {:>9.1}% {:>11.2}$ {:>15.4}$ {:>18.1}k$",
            strategy.short_name(),
            result.mean_normalized_perf() * 100.0,
            cost,
            cost / work_core_hours,
            long.total() / 1000.0,
        );
    }
    println!(
        "\nBatch work tolerates interference, so the mixed-size strategies'\n\
         cheap small instances shine; the statically reserved farm pays for\n\
         its idle peak capacity all night."
    );
    Ok(())
}
