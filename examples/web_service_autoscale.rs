//! A custom workload built from explicit job specs: a diurnal web stack —
//! a fleet of memcached services whose load follows a day/night pattern,
//! with background analytics — provisioned with HF vs OdF.
//!
//! Demonstrates [`Scenario::from_jobs`]: you are not limited to the
//! paper's three scenarios; any job stream can be provisioned.
//!
//! ```text
//! cargo run --release --example web_service_autoscale
//! ```

use hcloud::{
    runner::{run_scenario, AuditViolation, RunCtx},
    RunConfig, StrategyKind,
};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_sim::dist::{LogNormal, Sample};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::{SimDuration, SimTime};
use hcloud_workloads::{
    AppClass, JobId, JobKind, JobSpec, LatencyModel, Scenario, ScenarioConfig, ScenarioKind,
};

/// One simulated "day" is compressed into this window.
const DAY: SimDuration = SimDuration::from_mins(60);

/// Diurnal intensity in [0.35, 1.0]: quiet nights, busy afternoons.
fn diurnal(t: SimTime) -> f64 {
    let phase = t.as_secs_f64() / DAY.as_secs_f64() * std::f64::consts::TAU;
    0.675 - 0.325 * phase.cos()
}

fn main() -> Result<(), AuditViolation> {
    let factory = RngFactory::new(7);
    let mut rng = factory.stream("example.webstack");
    let latency = LatencyModel::default();
    let mut jobs = Vec::new();
    let mut id = 0u64;

    // Front-end cache fleet: waves of memcached services, each running
    // ~12 minutes, sized with the current diurnal intensity.
    let mut t = SimTime::ZERO;
    while t < SimTime::ZERO + DAY {
        let intensity = diurnal(t);
        let shards = (6.0 * intensity).round() as usize;
        for _ in 0..shards {
            let cores = if intensity > 0.8 { 4 } else { 2 };
            jobs.push(JobSpec {
                id: JobId(id),
                class: AppClass::Memcached,
                arrival: t,
                kind: JobKind::LatencyCritical {
                    offered_rps: latency.offered_rps_for(cores),
                    lifetime: SimDuration::from_mins(12),
                },
                cores,
                sensitivity: AppClass::Memcached.sample_sensitivity(&mut rng),
            });
            id += 1;
        }
        t += SimDuration::from_mins(10);
    }

    // Background analytics: steady stream of Hadoop jobs, heavier at night.
    let dur_noise = LogNormal::with_mean(1.0, 0.3);
    let mut t = SimTime::ZERO;
    while t < SimTime::ZERO + DAY {
        let nightly = 1.35 - diurnal(t);
        let n = (3.0 * nightly).round() as usize;
        for _ in 0..n {
            let cores = 4;
            let minutes = 6.0 * dur_noise.sample(&mut rng);
            jobs.push(JobSpec {
                id: JobId(id),
                class: AppClass::HadoopRecommender,
                arrival: t,
                kind: JobKind::Batch {
                    work_core_secs: cores as f64 * minutes * 60.0,
                },
                cores,
                sensitivity: AppClass::HadoopRecommender.sample_sensitivity(&mut rng),
            });
            id += 1;
        }
        t += SimDuration::from_mins(5);
    }

    let scenario = Scenario::from_jobs(
        ScenarioConfig::scaled(ScenarioKind::LowVariability, 0.07, 60),
        jobs,
    );
    println!(
        "diurnal web stack: {} jobs over one compressed day\n",
        scenario.jobs().len()
    );

    let rates = Rates::default();
    let pricing = PricingModel::aws();
    for strategy in [StrategyKind::HybridFull, StrategyKind::OnDemandFull] {
        let result = run_scenario(&scenario, &RunConfig::new(strategy), &RunCtx::new(&factory))?;
        let lc = result.lc_latency_boxplot().expect("memcached present");
        let cost = result.cost(&rates, &pricing);
        println!("{}:", strategy.short_name());
        println!(
            "  cache p99 latency: mean {:.0}us, p95 {:.0}us",
            lc.mean, lc.p95
        );
        if let Some(b) = result.batch_performance_boxplot() {
            println!("  analytics completion: mean {:.1}min", b.mean);
        }
        println!(
            "  cost: {:.2}$ (reserved {:.2}$ + on-demand {:.2}$), {} instances acquired\n",
            cost.total(),
            cost.reserved,
            cost.on_demand,
            result.counters.od_acquired
        );
    }
    println!("HF serves the diurnal trough from its small reserved pool and rides");
    println!("the afternoon peak on on-demand servers; OdF re-buys the whole stack");
    println!("at the on-demand rate every hour of the day.");
    Ok(())
}
