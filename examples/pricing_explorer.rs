//! Pricing explorer: for a workload you describe with one knob
//! (variability), find which provisioning strategy is cheapest under each
//! provider pricing model and across deployment durations.
//!
//! ```text
//! cargo run --release --example pricing_explorer [static|low|high]
//! ```

use hcloud::{
    runner::{run_scenario, AuditViolation, RunCtx},
    RunConfig, StrategyKind,
};
use hcloud_pricing::{commitment_cost, PricingModel, Rates, ReservedOnDemandPricing};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::{SimDuration, SimTime};
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};

fn main() -> Result<(), AuditViolation> {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "high".into());
    let kind = match arg.as_str() {
        "static" => ScenarioKind::Static,
        "low" => ScenarioKind::LowVariability,
        _ => ScenarioKind::HighVariability,
    };
    let factory = RngFactory::new(2024);
    let scenario = Scenario::generate(ScenarioConfig::scaled(kind, 0.25, 40), &factory);
    println!(
        "workload: {} ({} jobs)\n",
        kind.name(),
        scenario.jobs().len()
    );

    let rates = Rates::default();
    let mut results = Vec::new();
    for s in StrategyKind::ALL {
        let r = run_scenario(&scenario, &RunConfig::new(s), &RunCtx::new(&factory))?;
        results.push((s, r));
    }

    println!("Per-run cost under each provider pricing model ($):");
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "model", "SR", "OdF", "OdM", "HF", "HM"
    );
    for (name, model) in [
        ("reserved+od (AWS)", PricingModel::aws()),
        ("on-demand only (Azure)", PricingModel::azure()),
        ("sustained-use (GCE)", PricingModel::gce()),
    ] {
        print!("{name:<22}");
        for (_, r) in &results {
            print!(" {:>7.2}", r.cost(&rates, &model).total());
        }
        println!();
    }

    println!("\nCheapest strategy by deployment duration (AWS model, workload repeats):");
    let pricing = ReservedOnDemandPricing::default();
    for weeks in [2u64, 10, 20, 30, 52] {
        let duration = SimDuration::from_hours(weeks * 7 * 24);
        let (best, cost) = results
            .iter()
            .map(|(s, r)| {
                let c = commitment_cost(
                    &r.usage_records,
                    &rates,
                    &pricing,
                    r.makespan.saturating_since(SimTime::ZERO),
                    duration,
                )
                .total();
                (*s, c)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
            .expect("strategies non-empty");
        println!(
            "  {weeks:>3} weeks: {:<4} ({:.1}k$)",
            best.short_name(),
            cost / 1000.0
        );
    }
    println!("\n(Short deployments favour pure on-demand; reservations only pay off");
    println!(" once the workload sticks around — and only its *steady* part.)");
    Ok(())
}
