//! Quickstart: provision a bursty mixed workload with HCloud's hybrid
//! strategy and compare it against fully reserved and fully on-demand
//! provisioning.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hcloud::{
    runner::{run_scenario, AuditViolation, RunCtx},
    RunConfig, StrategyKind,
};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_sim::rng::RngFactory;
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};

fn main() -> Result<(), AuditViolation> {
    // Everything is deterministic in one master seed.
    let factory = RngFactory::new(42);

    // A scaled-down version of the paper's high-variability scenario:
    // ~7 minutes of simulated arrivals, load swinging 6x.
    let scenario = Scenario::generate(
        ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.25, 40),
        &factory,
    );
    println!(
        "workload: {} jobs over {:.0} minutes, load {:.0}..{:.0} cores\n",
        scenario.jobs().len(),
        scenario.config().duration.as_mins_f64(),
        scenario.stats().max_min_ratio.recip() * 100.0,
        100.0
    );

    let rates = Rates::default();
    let pricing = PricingModel::aws();
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>10}",
        "strategy", "perf", "batch mean", "p99 latency", "run cost"
    );
    for strategy in StrategyKind::ALL {
        let config = RunConfig::new(strategy);
        let result = run_scenario(&scenario, &config, &RunCtx::new(&factory))?;
        let batch = result.batch_performance_boxplot().expect("batch jobs");
        let lc = result.lc_latency_boxplot().expect("latency jobs");
        let cost = result.cost(&rates, &pricing);
        println!(
            "{:<8} {:>9.1}% {:>9.1}min {:>10.0}us {:>9.2}$",
            strategy.short_name(),
            result.mean_normalized_perf() * 100.0,
            batch.mean,
            lc.mean,
            cost.total(),
        );
    }
    println!(
        "\nSR is fast but pays for peak capacity around the clock; the on-demand\n\
         strategies pay spin-up and interference; the hybrids (HF/HM) keep the\n\
         sensitive work on reserved capacity and overflow to on-demand."
    );
    Ok(())
}
