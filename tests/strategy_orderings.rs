//! Integration tests: the paper's qualitative results hold end-to-end on
//! scaled-down scenarios.

use hcloud::{
    runner::{run_scenario, RunCtx},
    RunConfig, RunResult, StrategyKind,
};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_sim::rng::RngFactory;
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};

fn scenario(kind: ScenarioKind) -> Scenario {
    Scenario::generate(ScenarioConfig::scaled(kind, 0.15, 30), &RngFactory::new(42))
}

fn run(kind: ScenarioKind, strategy: StrategyKind) -> RunResult {
    run_scenario(
        &scenario(kind),
        &RunConfig::new(strategy),
        &RunCtx::new(&RngFactory::new(42)),
    )
    .expect("no auditor attached")
}

#[test]
fn reserved_beats_mixed_on_demand_everywhere() {
    for kind in ScenarioKind::ALL {
        let sr = run(kind, StrategyKind::StaticReserved);
        let odm = run(kind, StrategyKind::OnDemandMixed);
        assert!(
            sr.mean_normalized_perf() > odm.mean_normalized_perf() + 0.05,
            "{}: SR {:.3} vs OdM {:.3}",
            kind.name(),
            sr.mean_normalized_perf(),
            odm.mean_normalized_perf()
        );
    }
}

#[test]
fn hybrids_stay_close_to_reserved_performance() {
    // Paper: hybrids within ~8% of SR. Allow slack for the scaled-down
    // scenario's smaller sample.
    let kind = ScenarioKind::HighVariability;
    let sr = run(kind, StrategyKind::StaticReserved).mean_normalized_perf();
    for strategy in [StrategyKind::HybridFull, StrategyKind::HybridMixed] {
        let h = run(kind, strategy).mean_normalized_perf();
        assert!(
            h > sr * 0.85,
            "{strategy}: {h:.3} more than 15% below SR {sr:.3}"
        );
    }
}

#[test]
fn hybrids_outperform_mixed_on_demand() {
    let kind = ScenarioKind::HighVariability;
    let hm = run(kind, StrategyKind::HybridMixed).mean_normalized_perf();
    let odm = run(kind, StrategyKind::OnDemandMixed).mean_normalized_perf();
    assert!(hm > odm, "HM {hm:.3} should beat OdM {odm:.3}");
}

#[test]
fn odm_latency_blowup_matches_paper_direction() {
    // Paper: memcached suffers large tail-latency increases under OdM.
    let kind = ScenarioKind::HighVariability;
    let sr = run(kind, StrategyKind::StaticReserved)
        .lc_latency_boxplot()
        .expect("LC jobs");
    let odm = run(kind, StrategyKind::OnDemandMixed)
        .lc_latency_boxplot()
        .expect("LC jobs");
    assert!(
        odm.mean > sr.mean * 2.0,
        "OdM LC mean {:.0}us should be >2x SR {:.0}us",
        odm.mean,
        sr.mean
    );
    assert!(odm.p95 > sr.p95 * 3.0);
}

#[test]
fn per_run_cost_ordering_matches_figure5() {
    // Per-run billing: SR's reserved rate is 2.74x cheaper per hour, so a
    // single run is cheapest under SR, and hybrids undercut the
    // on-demand-only strategies.
    let rates = Rates::default();
    let model = PricingModel::aws();
    for kind in ScenarioKind::ALL {
        let cost = |s: StrategyKind| run(kind, s).cost(&rates, &model).total();
        let sr = cost(StrategyKind::StaticReserved);
        let odf = cost(StrategyKind::OnDemandFull);
        let odm = cost(StrategyKind::OnDemandMixed);
        let hf = cost(StrategyKind::HybridFull);
        let hm = cost(StrategyKind::HybridMixed);
        assert!(sr < odf && sr < odm, "{}: SR per-run cheapest", kind.name());
        assert!(hf < odf, "{}: HF {hf:.2} < OdF {odf:.2}", kind.name());
        assert!(hm < odm, "{}: HM {hm:.2} < OdM {odm:.2}", kind.name());
    }
}

#[test]
fn hybrid_reserved_utilization_is_high() {
    let kind = ScenarioKind::HighVariability;
    for strategy in [StrategyKind::HybridFull, StrategyKind::HybridMixed] {
        let r = run(kind, strategy);
        let util = r.mean_reserved_utilization().expect("reserved present");
        assert!(
            (0.45..=1.0).contains(&util),
            "{strategy}: reserved utilization {util:.2} implausible"
        );
    }
}

#[test]
fn sr_overprovisions_under_variability() {
    // SR must provision for peak; hybrids for the steady minimum.
    let kind = ScenarioKind::HighVariability;
    let sr = run(kind, StrategyKind::StaticReserved);
    let hm = run(kind, StrategyKind::HybridMixed);
    assert!(
        sr.reserved_cores > hm.reserved_cores * 3,
        "SR {} vs HM {} reserved cores",
        sr.reserved_cores,
        hm.reserved_cores
    );
}

#[test]
fn odm_releases_more_instances_immediately_than_hm() {
    // Paper: 43% of OdM's instances were released immediately vs 11% for
    // HM — the hybrid only sends tolerant jobs to shared instances.
    let kind = ScenarioKind::HighVariability;
    let odm = run(kind, StrategyKind::OnDemandMixed);
    let hm = run(kind, StrategyKind::HybridMixed);
    let rate = |r: &RunResult| {
        r.counters.od_released_immediately as f64 / r.counters.od_acquired.max(1) as f64
    };
    assert!(
        rate(&odm) > rate(&hm),
        "OdM churn {:.2} should exceed HM churn {:.2}",
        rate(&odm),
        rate(&hm)
    );
}

#[test]
fn profiling_information_improves_every_reserved_strategy() {
    let kind = ScenarioKind::LowVariability;
    for strategy in [
        StrategyKind::StaticReserved,
        StrategyKind::HybridFull,
        StrategyKind::HybridMixed,
    ] {
        let s = scenario(kind);
        let factory = RngFactory::new(42);
        let with = run_scenario(&s, &RunConfig::new(strategy), &RunCtx::new(&factory))
            .expect("no auditor attached");
        let without = run_scenario(
            &s,
            &RunConfig::new(strategy).without_profiling(),
            &RunCtx::new(&factory),
        )
        .expect("no auditor attached");
        assert!(
            with.mean_normalized_perf() > without.mean_normalized_perf(),
            "{strategy}: with {:.3} vs without {:.3}",
            with.mean_normalized_perf(),
            without.mean_normalized_perf()
        );
    }
}
