//! Integration tests: extreme and degenerate configurations must degrade
//! gracefully, never panic, and never lose jobs.

use hcloud::{
    runner::{run_scenario, RunCtx},
    RunConfig, StrategyKind,
};
use hcloud_cloud::{ExternalLoadModel, SpinUpModel};
use hcloud_sim::rng::RngFactory;
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};

fn scenario() -> Scenario {
    Scenario::generate(
        ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.08, 15),
        &RngFactory::new(5),
    )
}

fn assert_all_complete(config: &RunConfig, label: &str) {
    let s = scenario();
    let r =
        run_scenario(&s, config, &RunCtx::new(&RngFactory::new(5))).expect("no auditor attached");
    assert_eq!(r.outcomes.len(), s.jobs().len(), "{label}: jobs lost");
    for o in &r.outcomes {
        assert!(o.normalized_perf.is_finite(), "{label}: non-finite perf");
    }
}

#[test]
fn zero_retention_still_completes() {
    for strategy in StrategyKind::ALL {
        let mut c = RunConfig::new(strategy);
        c.retention_mult = 0.0;
        assert_all_complete(&c, "zero retention");
    }
}

#[test]
fn saturated_external_load_still_completes() {
    for strategy in [StrategyKind::OnDemandMixed, StrategyKind::HybridMixed] {
        let mut c = RunConfig::new(strategy);
        c.cloud.external = ExternalLoadModel::with_mean(1.0);
        assert_all_complete(&c, "external load 100%");
    }
}

#[test]
fn free_spin_up_still_completes() {
    let mut c = RunConfig::new(StrategyKind::OnDemandFull);
    c.cloud.spin_up = SpinUpModel::instant();
    assert_all_complete(&c, "instant spin-up");
}

#[test]
fn huge_spin_up_still_completes() {
    let mut c = RunConfig::new(StrategyKind::OnDemandMixed);
    c.cloud.spin_up = SpinUpModel::with_mean_secs(300.0);
    assert_all_complete(&c, "5-minute spin-up");
}

#[test]
fn starved_reserved_pool_still_completes() {
    // A single reserved server under a hybrid: everything overflows.
    let mut c = RunConfig::new(StrategyKind::HybridMixed);
    c.reserved_cores_override = Some(16);
    assert_all_complete(&c, "16-core reserved pool");
}

#[test]
fn oversized_reserved_pool_still_completes() {
    let mut c = RunConfig::new(StrategyKind::HybridFull);
    c.reserved_cores_override = Some(4096);
    assert_all_complete(&c, "huge reserved pool");
}

#[test]
fn sr_with_tight_capacity_queues_but_finishes() {
    // SR provisioned *below* peak: jobs must queue and still drain.
    let s = scenario();
    let peak = s
        .required_cores_series()
        .max_over(hcloud_sim::SimTime::ZERO, s.ideal_completion());
    let mut c = RunConfig::new(StrategyKind::StaticReserved);
    c.reserved_cores_override = Some((peak * 0.6) as u32);
    let r = run_scenario(&s, &c, &RunCtx::new(&RngFactory::new(5))).expect("no auditor attached");
    assert_eq!(r.outcomes.len(), s.jobs().len());
    assert!(
        r.counters.queued_jobs > 0,
        "expected queueing under tight capacity"
    );
}

#[test]
fn all_sensitive_workload_completes() {
    let mut config = ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.08, 15);
    config.sensitive_fraction = Some(1.0);
    let s = Scenario::generate(config, &RngFactory::new(5));
    for strategy in StrategyKind::ALL {
        let r = run_scenario(
            &s,
            &RunConfig::new(strategy),
            &RunCtx::new(&RngFactory::new(5)),
        )
        .expect("no auditor attached");
        assert_eq!(r.outcomes.len(), s.jobs().len(), "{strategy}");
    }
}

#[test]
fn empty_scenario_is_a_noop() {
    let config = ScenarioConfig::scaled(ScenarioKind::Static, 0.05, 10);
    let s = Scenario::from_jobs(config, vec![]);
    let r = run_scenario(
        &s,
        &RunConfig::new(StrategyKind::HybridMixed),
        &RunCtx::new(&RngFactory::new(1)),
    )
    .expect("no auditor attached");
    assert!(r.outcomes.is_empty());
    assert_eq!(r.counters.od_acquired, 0);
}

#[test]
fn full_chaos_fault_plan_still_completes_every_strategy() {
    // The deterministic fault plans are stress, not sabotage: every
    // injected failure class has a recovery path, so no strategy may
    // lose a job under the kitchen-sink plan.
    use hcloud::config::SpotPolicy;
    use hcloud_faults::FaultPlanId;
    for strategy in StrategyKind::ALL {
        let c = RunConfig::new(strategy)
            .with_spot(SpotPolicy::default())
            .with_faults(FaultPlanId::FullChaos.plan());
        assert_all_complete(&c, "full chaos");
    }
}

#[test]
fn cranked_up_chaos_still_completes() {
    // Double-intensity chaos: more storms, more flaky spin-ups, more
    // stragglers. Completion must still hold.
    use hcloud::config::SpotPolicy;
    use hcloud_faults::FaultPlanId;
    let c = RunConfig::new(StrategyKind::HybridMixed)
        .with_spot(SpotPolicy::default())
        .with_faults(FaultPlanId::FullChaos.plan().with_intensity(2.0));
    assert_all_complete(&c, "full chaos x2");
}

#[test]
fn preempted_jobs_are_requeued_never_dropped() {
    // Regression for the spot-termination path: a preempted job must
    // re-enter admission (carrying its remaining work) and eventually
    // finish — never silently vanish from the outcome set.
    use hcloud::config::SpotPolicy;
    use hcloud_faults::FaultPlanId;
    let s = scenario();
    let c = RunConfig::new(StrategyKind::HybridMixed)
        .with_spot(SpotPolicy::default())
        .with_faults(FaultPlanId::PreemptionStorms.plan().with_intensity(3.0));
    let r = run_scenario(&s, &c, &RunCtx::new(&RngFactory::new(5))).expect("no auditor attached");
    assert_eq!(r.outcomes.len(), s.jobs().len(), "preemption dropped jobs");
    assert!(
        r.counters.spot_terminations > 0,
        "storm plan caused no preemptions — the regression test is vacuous"
    );
    assert!(
        r.outcomes.iter().any(|o| o.rescheduled),
        "preempted jobs should surface as rescheduled"
    );
    for o in &r.outcomes {
        assert!(
            o.finished >= o.started,
            "preempted job has a broken timeline"
        );
    }
}

#[test]
fn monitor_blackout_degrades_dynamic_policy_gracefully() {
    // During QoS-signal dropouts the P8 dynamic policy falls back to the
    // static soft-limit rule instead of acting on stale readings.
    use hcloud_faults::FaultPlanId;
    let s = scenario();
    // The stock plan's 30-minute dropout cadence can miss a short smoke
    // scenario entirely; crank intensity so windows land inside the run.
    let c = RunConfig::new(StrategyKind::HybridMixed)
        .with_faults(FaultPlanId::MonitorBlackout.plan().with_intensity(8.0));
    let r = run_scenario(&s, &c, &RunCtx::new(&RngFactory::new(5))).expect("no auditor attached");
    assert_eq!(r.outcomes.len(), s.jobs().len(), "blackout dropped jobs");
    assert!(
        r.counters.monitor_dropout_ticks > 0,
        "blackout plan never dropped the monitor signal"
    );
    assert!(
        r.counters.policy_fallbacks > 0,
        "dynamic policy never fell back during a dropout"
    );
}

#[test]
fn profiling_off_with_extreme_load_never_panics() {
    let mut c = RunConfig::new(StrategyKind::HybridMixed).without_profiling();
    c.cloud.external = ExternalLoadModel::with_mean(0.9);
    c.retention_mult = 500.0;
    assert_all_complete(&c, "unprofiled, 90% load, long retention");
}
