//! Integration tests for the Section 5.5 spot-instance extension.

use hcloud::config::SpotPolicy;
use hcloud::{
    runner::{run_scenario, RunCtx},
    RunConfig, RunResult, StrategyKind,
};
use hcloud_pricing::{PricingModel, Rates};
use hcloud_sim::rng::RngFactory;
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};

fn scenario() -> Scenario {
    Scenario::generate(
        ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.15, 30),
        &RngFactory::new(21),
    )
}

fn run(spot: Option<SpotPolicy>) -> RunResult {
    let mut config = RunConfig::new(StrategyKind::HybridMixed);
    config.spot = spot;
    run_scenario(&scenario(), &config, &RunCtx::new(&RngFactory::new(21)))
        .expect("no auditor attached")
}

#[test]
fn spot_reduces_cost_without_losing_jobs() {
    let s = scenario();
    let base = run(None);
    let with = run(Some(SpotPolicy::default()));
    assert_eq!(with.outcomes.len(), s.jobs().len(), "jobs lost under spot");
    assert!(with.counters.spot_acquired > 0, "no spot instances used");
    let rates = Rates::default();
    let model = PricingModel::aws();
    let base_cost = base.cost(&rates, &model).total();
    let with_cost = with.cost(&rates, &model).total();
    assert!(
        with_cost < base_cost,
        "spot should reduce cost: {with_cost:.2} vs {base_cost:.2}"
    );
}

#[test]
fn spot_performance_impact_is_bounded() {
    let base = run(None);
    let with = run(Some(SpotPolicy::default()));
    assert!(
        with.mean_normalized_perf() > base.mean_normalized_perf() - 0.05,
        "spot perf {:.3} collapsed vs base {:.3}",
        with.mean_normalized_perf(),
        base.mean_normalized_perf()
    );
}

#[test]
fn low_bids_get_terminated_more() {
    let aggressive = run(Some(SpotPolicy {
        bid_multiplier: 0.38,
        max_quality: 0.8,
    }));
    let safe = run(Some(SpotPolicy {
        bid_multiplier: 2.0,
        max_quality: 0.8,
    }));
    assert_eq!(safe.counters.spot_terminations, 0, "a 2x bid never loses");
    assert!(
        aggressive.counters.spot_terminations >= safe.counters.spot_terminations,
        "lower bids should terminate at least as often"
    );
    // Terminated jobs still finish (evacuation to on-demand).
    assert_eq!(aggressive.outcomes.len(), scenario().jobs().len());
}

#[test]
fn latency_critical_jobs_never_ride_spot() {
    let with = run(Some(SpotPolicy {
        bid_multiplier: 0.6,
        max_quality: 1.0, // even with the quality gate wide open
    }));
    // Spot usage exists, but memcached outcomes keep their latency intact
    // relative to the no-spot baseline (no LC job was evacuated).
    let base = run(None);
    let lc_with = with.lc_latency_boxplot().expect("LC jobs");
    let lc_base = base.lc_latency_boxplot().expect("LC jobs");
    assert!(
        lc_with.mean < lc_base.mean * 1.25,
        "LC latency degraded under spot: {:.0} vs {:.0}",
        lc_with.mean,
        lc_base.mean
    );
}

#[test]
fn spot_usage_is_billed_at_a_discount() {
    let with = run(Some(SpotPolicy::default()));
    let spot_records: Vec<_> = with
        .usage_records
        .iter()
        .filter(|u| u.rate_multiplier < 0.999)
        .collect();
    assert!(!spot_records.is_empty(), "expected discounted spot records");
    for u in spot_records {
        assert!(
            (0.1..1.0).contains(&u.rate_multiplier),
            "implausible spot multiplier {}",
            u.rate_multiplier
        );
    }
}

#[test]
fn paper_strategies_are_untouched_by_default() {
    // spot: None is the default — the five paper strategies never touch
    // the spot market.
    for strategy in StrategyKind::ALL {
        let r = run_scenario(
            &scenario(),
            &RunConfig::new(strategy),
            &RunCtx::new(&RngFactory::new(21)),
        )
        .expect("no auditor attached");
        assert_eq!(r.counters.spot_acquired, 0, "{strategy}");
        assert!(r.usage_records.iter().all(|u| u.rate_multiplier == 1.0));
    }
}
