//! Property-based integration tests (proptest) over the core invariants
//! the HCloud system relies on.

use hcloud_interference::quality::{encode_raw, encode_raw_max};
use hcloud_interference::{resource_quality, ResourceVector, SlowdownModel, NUM_RESOURCES};
use hcloud_pricing::{run_cost, PricingModel, Rates, ReservedOnDemandPricing, SustainedUsePricing};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::{SimDuration, SimTime};
use hcloud_workloads::{LatencyModel, Scenario, ScenarioConfig, ScenarioKind};
use proptest::prelude::*;

fn unit_vector() -> impl Strategy<Value = ResourceVector> {
    prop::array::uniform10(0.0f64..=1.0).prop_map(ResourceVector::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------------------------------------------------------
    // Q encoding (Section 3.3)
    // ---------------------------------------------------------------

    /// Q is always in [0, 1].
    #[test]
    fn quality_is_normalized(v in unit_vector()) {
        let q = resource_quality(&v);
        prop_assert!((0.0..=1.0).contains(&q));
    }

    /// The encoding is permutation-invariant: only sorted magnitudes
    /// matter.
    #[test]
    fn quality_is_permutation_invariant(v in unit_vector(), seed in 0u64..1000) {
        let mut arr = *v.as_array();
        // Deterministic pseudo-shuffle.
        for i in (1..NUM_RESOURCES).rev() {
            let j = ((seed.wrapping_mul(i as u64 + 13)) % (i as u64 + 1)) as usize;
            arr.swap(i, j);
        }
        prop_assert_eq!(encode_raw(&v), encode_raw(&ResourceVector::new(arr)));
    }

    /// The encoding preserves lexicographic order on the sorted,
    /// quantized coefficient vectors (the "order preserving" claim).
    #[test]
    fn quality_preserves_dominance_order(v in unit_vector(), bump in 0usize..NUM_RESOURCES) {
        let arr = *v.as_array();
        let mut bigger = arr;
        bigger[bump] = (bigger[bump] + 0.05).min(1.0);
        let a = encode_raw(&ResourceVector::new(arr));
        let b = encode_raw(&ResourceVector::new(bigger));
        prop_assert!(b >= a, "increasing a coefficient must not lower Q");
        prop_assert!(encode_raw(&v) <= encode_raw_max());
    }

    // ---------------------------------------------------------------
    // Slowdown model
    // ---------------------------------------------------------------

    /// Slowdown is ≥ 1 and monotone in pressure.
    #[test]
    fn slowdown_bounds_and_monotonicity(
        c in unit_vector(),
        p in prop::array::uniform10(0.0f64..=2.0),
        extra in 0.0f64..=0.5,
    ) {
        let model = SlowdownModel::default();
        let pressure = ResourceVector::new(p);
        let s1 = model.slowdown(&c, &pressure);
        prop_assert!(s1 >= 1.0);
        let more = ResourceVector::from_fn(|i| p[i] + extra);
        let s2 = model.slowdown(&c, &more);
        prop_assert!(s2 >= s1 - 1e-12);
    }

    /// Delivered quality is in (0, 1] and anti-monotone in pressure.
    #[test]
    fn delivered_quality_bounds(p in prop::array::uniform10(0.0f64..=2.0), extra in 0.0f64..=0.5) {
        let model = SlowdownModel::default();
        let q1 = model.delivered_quality(&ResourceVector::new(p));
        prop_assert!(q1 > 0.0 && q1 <= 1.0);
        let q2 = model.delivered_quality(&ResourceVector::from_fn(|i| p[i] + extra));
        prop_assert!(q2 <= q1 + 1e-12);
    }

    // ---------------------------------------------------------------
    // Latency model
    // ---------------------------------------------------------------

    /// p99 latency is finite, positive, and monotone in load and
    /// slowdown.
    #[test]
    fn latency_model_monotone(
        rps in 100.0f64..100_000.0,
        cores in 1u32..=16,
        slowdown in 1.0f64..=4.0,
    ) {
        let m = LatencyModel::default();
        let p = m.p99_latency_us(rps, cores, slowdown);
        prop_assert!(p.is_finite() && p > 0.0);
        prop_assert!(m.p99_latency_us(rps * 1.1, cores, slowdown) >= p);
        prop_assert!(m.p99_latency_us(rps, cores, slowdown + 0.1) >= p);
        prop_assert!(m.p99_latency_us(rps, cores, 1.0) >= m.isolation_p99_us(rps, cores) - 1e-9);
    }

    // ---------------------------------------------------------------
    // Scenario generation
    // ---------------------------------------------------------------

    /// Any seed/scale produces a well-formed scenario: sorted arrivals,
    /// valid core counts, unit-range sensitivities.
    #[test]
    fn scenarios_are_well_formed(seed in 0u64..500, scale in 0.05f64..0.3) {
        let config = ScenarioConfig {
            load_scale: scale,
            duration: SimDuration::from_mins(12),
            ..ScenarioConfig::paper(ScenarioKind::HighVariability)
        };
        let s = Scenario::generate(config, &RngFactory::new(seed));
        let mut last = SimTime::ZERO;
        for j in s.jobs() {
            prop_assert!(j.arrival >= last);
            last = j.arrival;
            prop_assert!((1..=16).contains(&j.cores));
            prop_assert!(j.sensitivity.is_unit_range());
            prop_assert!(j.ideal_duration() > SimDuration::ZERO);
        }
    }

    // ---------------------------------------------------------------
    // Pricing
    // ---------------------------------------------------------------

    /// Billing is additive over record sets and monotone in duration.
    #[test]
    fn billing_is_additive_and_monotone(
        hours_a in 1u64..20,
        hours_b in 1u64..20,
        reserved in proptest::bool::ANY,
    ) {
        use hcloud_cloud::{InstanceType, UsageRecord};
        let rates = Rates::default();
        let run_len = SimDuration::from_hours(48);
        let rec = |h: u64| UsageRecord::new(
            InstanceType::standard(4),
            reserved,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(h),
        );
        for model in [PricingModel::aws(), PricingModel::azure(), PricingModel::gce()] {
            let a = run_cost(&[rec(hours_a)], &rates, &model, run_len).total();
            let b = run_cost(&[rec(hours_b)], &rates, &model, run_len).total();
            let both = run_cost(&[rec(hours_a), rec(hours_b)], &rates, &model, run_len).total();
            prop_assert!((both - (a + b)).abs() < 1e-9, "billing must be additive");
            let longer = run_cost(&[rec(hours_a.max(hours_b))], &rates, &model, run_len).total();
            prop_assert!(longer >= a.min(b) - 1e-9);
        }
    }

    /// Reserved per-hour price scales as 1/ratio; the sustained-use
    /// multiplier never discounts below the full-month floor.
    #[test]
    fn pricing_parameters_behave(ratio in 0.01f64..10.0, frac in 0.0f64..=1.0) {
        let rates = Rates::default();
        let p = ReservedOnDemandPricing::with_ratio(ratio);
        let full = hcloud_cloud::InstanceType::full_server();
        let od = rates.on_demand_hourly(full);
        prop_assert!((p.reserved_hourly(&rates, full) - od / ratio).abs() < 1e-12);
        let s = SustainedUsePricing::default();
        let m = s.effective_multiplier(frac);
        prop_assert!((0.7..=1.0).contains(&m));
    }
}
