//! Integration tests: determinism and workload/strategy independence.

use hcloud::{
    runner::{run_scenario, RunCtx},
    RunConfig, StrategyKind,
};
use hcloud_sim::rng::RngFactory;
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};

fn scenario(seed: u64) -> Scenario {
    Scenario::generate(
        ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.1, 20),
        &RngFactory::new(seed),
    )
}

#[test]
fn identical_seeds_reproduce_runs_bit_for_bit() {
    let run = || {
        let s = scenario(1);
        run_scenario(
            &s,
            &RunConfig::new(StrategyKind::HybridMixed),
            &RunCtx::new(&RngFactory::new(1)),
        )
        .expect("no auditor attached")
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.counters.od_acquired, b.counters.od_acquired);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.usage_records.len(), b.usage_records.len());
}

#[test]
fn different_seeds_differ() {
    let a = scenario(1);
    let b = scenario(2);
    assert_ne!(
        a.jobs().iter().map(|j| j.arrival).collect::<Vec<_>>(),
        b.jobs().iter().map(|j| j.arrival).collect::<Vec<_>>()
    );
}

#[test]
fn workload_is_identical_across_strategies() {
    // The scenario is generated before any strategy sees it — every
    // strategy must face the same jobs (the paper's repeatable
    // methodology).
    let s = scenario(7);
    let ids: Vec<_> = s.jobs().iter().map(|j| j.id).collect();
    for strategy in StrategyKind::ALL {
        let r = run_scenario(
            &s,
            &RunConfig::new(strategy),
            &RunCtx::new(&RngFactory::new(7)),
        )
        .expect("no auditor attached");
        let mut done: Vec<_> = r.outcomes.iter().map(|o| o.id).collect();
        done.sort();
        let mut expect = ids.clone();
        expect.sort();
        assert_eq!(done, expect, "{strategy} lost or invented jobs");
    }
}

#[test]
fn interference_is_repeatable_across_strategies() {
    // Two strategies observing the same instance id at the same time see
    // the same external pressure (the container methodology of §2.2).
    use hcloud_cloud::{Cloud, CloudConfig, InstanceType};
    use hcloud_sim::SimTime;
    let mk = || Cloud::new(CloudConfig::default(), RngFactory::new(99).child("cloud"));
    let mut c1 = mk();
    let mut c2 = mk();
    let a = c1.acquire(InstanceType::standard(2), SimTime::ZERO);
    let b = c2.acquire(InstanceType::standard(2), SimTime::ZERO);
    for k in 1..50 {
        let t = SimTime::from_secs(k * 13);
        assert_eq!(c1.external_pressure(a, t), c2.external_pressure(b, t));
    }
}

#[test]
fn outcomes_are_internally_consistent() {
    let s = scenario(3);
    for strategy in StrategyKind::ALL {
        let r = run_scenario(
            &s,
            &RunConfig::new(strategy),
            &RunCtx::new(&RngFactory::new(3)),
        )
        .expect("no auditor attached");
        for o in &r.outcomes {
            assert!(o.started >= o.arrival, "{strategy}: started before arrival");
            assert!(o.finished >= o.started, "{strategy}: finished before start");
            assert!(
                (0.0..=1.0).contains(&o.normalized_perf),
                "{strategy}: perf bounds"
            );
            assert_eq!(
                o.completion.is_some(),
                !o.is_latency_critical(),
                "{strategy}: metric/kind mismatch"
            );
            assert!(
                o.cores >= 1 && o.cores <= 16,
                "{strategy}: cores {}",
                o.cores
            );
        }
        for u in &r.usage_records {
            assert!(u.to >= u.from, "{strategy}: negative usage interval");
        }
    }
}

#[test]
fn identical_fault_plans_reproduce_runs_bit_for_bit() {
    // Fault schedules derive from their own RNG streams of the master
    // seed: the same plan + seed must inject the same faults.
    use hcloud_faults::FaultPlanId;
    let run = || {
        let s = scenario(1);
        let config = RunConfig::new(StrategyKind::HybridMixed)
            .with_spot(hcloud::config::SpotPolicy::default())
            .with_faults(FaultPlanId::FullChaos.plan());
        run_scenario(&s, &config, &RunCtx::new(&RngFactory::new(1))).expect("no auditor attached")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn off_fault_plan_matches_no_fault_plan() {
    // `HCLOUD_FAULTS=off` must be byte-identical to a build that never
    // heard of fault injection: the off plan consumes no randomness.
    let s = scenario(1);
    let plain = run_scenario(
        &s,
        &RunConfig::new(StrategyKind::HybridMixed),
        &RunCtx::new(&RngFactory::new(1)),
    )
    .expect("no auditor attached");
    let explicit_off = run_scenario(
        &s,
        &RunConfig::new(StrategyKind::HybridMixed).with_faults(hcloud_faults::FaultPlan::off()),
        &RunCtx::new(&RngFactory::new(1)),
    )
    .expect("no auditor attached");
    assert_eq!(plain, explicit_off);
}

#[test]
fn faulted_engine_results_are_identical_for_any_worker_count() {
    // The full-chaos plan under 1 and 4 workers: injected faults are
    // drawn per-run from the run's own seed, so fan-out cannot reorder
    // them.
    use hcloud_bench::{Engine, ExperimentCtx, ExperimentPlan, RunSpec};
    use hcloud_faults::FaultPlanId;

    let plan = || -> ExperimentPlan {
        StrategyKind::ALL
            .iter()
            .map(|&s| {
                RunSpec::of(ScenarioKind::HighVariability, s)
                    .map_config(|c| c.with_spot(hcloud::config::SpotPolicy::default()))
            })
            .collect()
    };
    let run_with = |jobs: usize| {
        let ctx = ExperimentCtx::new(11)
            .with_fast(true)
            .with_jobs(jobs)
            .with_faults(FaultPlanId::FullChaos);
        Engine::new(ctx).run_plan(&plan()).results
    };

    let sequential = run_with(1);
    let parallel = run_with(4);
    assert_eq!(sequential, parallel, "faulted runs differ across workers");
    // Chaos actually happened somewhere in the plan.
    assert!(
        sequential
            .iter()
            .any(|r| r.counters.acquire_retries > 0 || r.counters.storm_preemptions > 0),
        "full-chaos plan injected nothing"
    );
}

#[test]
fn engine_results_are_identical_for_any_worker_count() {
    // The acceptance bar for the parallel experiment engine: the same
    // plan, run with 1 worker and with 4, produces bit-identical results
    // for every strategy (HCLOUD_JOBS must never change the science).
    use hcloud_bench::{Engine, ExperimentCtx, ExperimentPlan, RunSpec};

    let plan = || -> ExperimentPlan {
        StrategyKind::ALL
            .iter()
            .map(|&s| RunSpec::of(ScenarioKind::HighVariability, s))
            .collect()
    };
    let run_with = |jobs: usize| {
        let ctx = ExperimentCtx::new(11).with_fast(true).with_jobs(jobs);
        Engine::new(ctx).run_plan(&plan()).results
    };

    let sequential = run_with(1);
    let parallel = run_with(4);
    assert_eq!(sequential.len(), StrategyKind::ALL.len());
    for ((&strategy, a), b) in StrategyKind::ALL.iter().zip(&sequential).zip(&parallel) {
        assert_eq!(a.strategy, strategy, "plan order broken for {strategy}");
        assert_eq!(a, b, "{strategy} differs between 1 and 4 workers");
        assert!(
            a.counters.events_processed > 0,
            "{strategy} telemetry missing"
        );
    }
}
