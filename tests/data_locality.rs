//! Integration tests for the Section 5.5 data-locality extension.

use hcloud::config::DataLocalityModel;
use hcloud::{
    runner::{run_scenario, RunCtx},
    RunConfig, RunResult, StrategyKind,
};
use hcloud_sim::rng::RngFactory;
use hcloud_workloads::{Scenario, ScenarioConfig, ScenarioKind};

fn scenario() -> Scenario {
    Scenario::generate(
        ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.15, 30),
        &RngFactory::new(33),
    )
}

fn run(data: Option<DataLocalityModel>) -> RunResult {
    let mut config = RunConfig::new(StrategyKind::HybridMixed);
    config.data = data;
    run_scenario(&scenario(), &config, &RunCtx::new(&RngFactory::new(33)))
        .expect("no auditor attached")
}

#[test]
fn default_has_no_transfers() {
    let r = run(None);
    assert_eq!(r.counters.data_transfers, 0);
    assert_eq!(r.counters.data_transferred_gb, 0.0);
}

#[test]
fn split_clusters_cause_transfers_and_cost_performance() {
    let base = run(None);
    let split = run(Some(DataLocalityModel::default()));
    assert!(split.counters.data_transfers > 0);
    assert!(split.counters.data_transferred_gb > 0.0);
    assert!(
        split.mean_normalized_perf() < base.mean_normalized_perf(),
        "transfers should cost performance: {:.3} vs {:.3}",
        split.mean_normalized_perf(),
        base.mean_normalized_perf()
    );
    // All jobs still complete.
    assert_eq!(split.outcomes.len(), scenario().jobs().len());
}

#[test]
fn data_aware_placement_moves_less_data() {
    let mk = |aware: bool| DataLocalityModel {
        private_data_fraction: 0.7,
        bandwidth_gbps: 10.0,
        data_aware_placement: aware,
    };
    let oblivious = run(Some(mk(false)));
    let aware = run(Some(mk(true)));
    assert!(
        aware.counters.data_transferred_gb < oblivious.counters.data_transferred_gb,
        "data-aware moved {:.0} GB vs oblivious {:.0} GB",
        aware.counters.data_transferred_gb,
        oblivious.counters.data_transferred_gb
    );
    assert!(
        aware.mean_normalized_perf() >= oblivious.mean_normalized_perf(),
        "data-aware perf {:.3} should be >= oblivious {:.3}",
        aware.mean_normalized_perf(),
        oblivious.mean_normalized_perf()
    );
}

#[test]
fn faster_links_hurt_less() {
    let mk = |gbps: f64| {
        Some(DataLocalityModel {
            private_data_fraction: 0.7,
            bandwidth_gbps: gbps,
            data_aware_placement: true,
        })
    };
    let slow = run(mk(1.0));
    let fast = run(mk(100.0));
    assert!(
        fast.mean_normalized_perf() > slow.mean_normalized_perf(),
        "100 Gbit/s {:.3} should beat 1 Gbit/s {:.3}",
        fast.mean_normalized_perf(),
        slow.mean_normalized_perf()
    );
}

#[test]
fn data_home_is_deterministic_and_respects_fraction() {
    let all_private = DataLocalityModel {
        private_data_fraction: 1.0,
        ..DataLocalityModel::default()
    };
    let none_private = DataLocalityModel {
        private_data_fraction: 0.0,
        ..DataLocalityModel::default()
    };
    let half = DataLocalityModel {
        private_data_fraction: 0.5,
        ..DataLocalityModel::default()
    };
    let mut private_count = 0;
    for id in 0..2000u64 {
        assert!(all_private.data_in_private(id));
        assert!(!none_private.data_in_private(id));
        assert_eq!(half.data_in_private(id), half.data_in_private(id));
        if half.data_in_private(id) {
            private_count += 1;
        }
    }
    assert!(
        (800..1200).contains(&private_count),
        "half split produced {private_count}/2000 private"
    );
}

#[test]
fn dataset_sizes_are_deterministic_and_class_shaped() {
    let s = scenario();
    for j in s.jobs().iter().take(200) {
        let gb = j.dataset_gb();
        assert!(gb > 0.0 && gb < 1000.0, "dataset {gb} GB");
        assert_eq!(gb, j.dataset_gb(), "dataset size must be stable");
    }
    // Real-time Spark stages carry tiny datasets compared to Hadoop.
    let rt: Vec<f64> = s
        .jobs()
        .iter()
        .filter(|j| j.class == hcloud_workloads::AppClass::SparkRealtime)
        .map(|j| j.dataset_gb())
        .collect();
    let hadoop: Vec<f64> = s
        .jobs()
        .iter()
        .filter(|j| j.class == hcloud_workloads::AppClass::HadoopRecommender)
        .map(|j| j.dataset_gb())
        .collect();
    if !rt.is_empty() && !hadoop.is_empty() {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&rt) < mean(&hadoop) / 10.0);
    }
}
