//! Integration tests for the mapping policies (Section 4.2) driving real
//! scenario runs.

use hcloud::{
    runner::{run_scenario, RunCtx},
    MappingPolicy, RunConfig, RunResult, StrategyKind,
};
use hcloud_sim::rng::RngFactory;
use hcloud_sim::stats::mean;
use hcloud_workloads::{AppClass, Scenario, ScenarioConfig, ScenarioKind};

fn scenario() -> Scenario {
    Scenario::generate(
        ScenarioConfig::scaled(ScenarioKind::HighVariability, 0.12, 25),
        &RngFactory::new(11),
    )
}

fn run_policy(policy: MappingPolicy) -> RunResult {
    run_scenario(
        &scenario(),
        &RunConfig::new(StrategyKind::HybridMixed).with_policy(policy),
        &RunCtx::new(&RngFactory::new(11)),
    )
    .expect("no auditor attached")
}

#[test]
fn dynamic_policy_beats_random_mapping() {
    let dynamic = run_policy(MappingPolicy::Dynamic);
    let random = run_policy(MappingPolicy::Random);
    assert!(
        dynamic.mean_normalized_perf() > random.mean_normalized_perf(),
        "dynamic {:.3} vs random {:.3}",
        dynamic.mean_normalized_perf(),
        random.mean_normalized_perf()
    );
}

#[test]
fn strict_quality_thresholds_cause_reserved_queueing() {
    // P4 sends almost every job to reserved (Q > 0.2), swamping it.
    let p4 = run_policy(MappingPolicy::QualityThreshold(0.2));
    let p2 = run_policy(MappingPolicy::QualityThreshold(0.8));
    assert!(
        p4.counters.queued_jobs > p2.counters.queued_jobs,
        "P4 queued {} vs P2 queued {}",
        p4.counters.queued_jobs,
        p2.counters.queued_jobs
    );
}

#[test]
fn low_utilization_limits_waste_reserved_capacity() {
    let p5 = run_policy(MappingPolicy::UtilizationLimit(0.5));
    let p7 = run_policy(MappingPolicy::UtilizationLimit(0.9));
    let u5 = p5.mean_reserved_utilization().expect("reserved");
    let u7 = p7.mean_reserved_utilization().expect("reserved");
    assert!(u5 < u7, "util P5 {u5:.2} should be below P7 {u7:.2}");
}

#[test]
fn dynamic_policy_shields_memcached_from_small_instances() {
    // Under the dynamic policy, interference-sensitive memcached should
    // be placed on reserved resources much more often than tolerant
    // batch jobs.
    let r = run_policy(MappingPolicy::Dynamic);
    let frac_reserved = |class_filter: &dyn Fn(AppClass) -> bool| {
        let total = r.outcomes.iter().filter(|o| class_filter(o.class)).count();
        let reserved = r
            .outcomes
            .iter()
            .filter(|o| class_filter(o.class) && o.on_reserved)
            .count();
        reserved as f64 / total.max(1) as f64
    };
    let mc = frac_reserved(&|c| c == AppClass::Memcached);
    let batch = frac_reserved(&|c| c.is_batch() && !c.is_sensitive());
    assert!(
        mc > batch,
        "memcached reserved fraction {mc:.2} should exceed tolerant batch {batch:.2}"
    );
}

#[test]
fn dynamic_policy_keeps_both_sides_healthy() {
    let r = run_policy(MappingPolicy::Dynamic);
    let reserved = mean(&r.normalized_perf(Some(true))).expect("reserved jobs");
    let od = mean(&r.normalized_perf(Some(false))).expect("od jobs");
    assert!(reserved > 0.75, "reserved-side perf {reserved:.2}");
    assert!(od > 0.75, "on-demand-side perf {od:.2}");
}

#[test]
fn soft_limit_trace_is_bounded_and_nonempty() {
    let r = run_policy(MappingPolicy::Dynamic);
    assert!(!r.soft_limit_trace.is_empty());
    for &(_, v) in &r.soft_limit_trace {
        assert!(
            (0.2..=0.9).contains(&v),
            "soft limit {v} escaped its bounds"
        );
    }
}

#[test]
fn wait_estimates_are_conservative_overall() {
    // The estimator may over-estimate (it quotes a p99) but should not
    // systematically under-estimate.
    let r = run_policy(MappingPolicy::QualityThreshold(0.2)); // lots of queueing
    let pairs: Vec<(f64, f64)> = r
        .wait_samples
        .iter()
        .filter_map(|w| {
            w.estimated
                .map(|e| (e.as_secs_f64(), w.actual.as_secs_f64()))
        })
        .collect();
    if pairs.len() >= 20 {
        let underestimates = pairs.iter().filter(|(e, a)| a > &(e * 2.0 + 5.0)).count();
        let rate = underestimates as f64 / pairs.len() as f64;
        assert!(rate < 0.2, "gross under-estimation rate {rate:.2}");
    }
}

#[test]
fn decision_trail_is_recorded_on_request() {
    use hcloud::result::PlacementReason;
    let s = scenario();
    let mut config = RunConfig::new(StrategyKind::HybridMixed);
    config.record_decisions = true;
    let r =
        run_scenario(&s, &config, &RunCtx::new(&RngFactory::new(11))).expect("no auditor attached");
    assert_eq!(r.decisions.len(), s.jobs().len(), "one decision per job");
    // Reasons must be internally consistent with what the run did.
    let queued = r
        .decisions
        .iter()
        .filter(|d| d.reason == PlacementReason::QueuedAtHardLimit)
        .count();
    assert!(queued <= r.counters.queued_jobs, "{queued} vs counter");
    assert!(r
        .decisions
        .iter()
        .any(|d| d.reason == PlacementReason::BelowSoftLimit));
    for d in &r.decisions {
        assert!((0.0..=1.0).contains(&d.estimated_quality));
        assert!(d.reserved_utilization >= 0.0);
    }
    // Off by default.
    let r = run_scenario(
        &s,
        &RunConfig::new(StrategyKind::HybridMixed),
        &RunCtx::new(&RngFactory::new(11)),
    )
    .expect("no auditor attached");
    assert!(r.decisions.is_empty());
}
