//! Integration tests for the structured telemetry layer: trace content
//! and bit-identical traces across engine worker counts.

use hcloud::StrategyKind;
use hcloud_bench::engine::{Engine, ExperimentCtx, ExperimentPlan, RunSpec};
use hcloud_telemetry::{render_jsonl, TraceKind, TraceMode};
use hcloud_workloads::ScenarioKind;

fn traced_plan() -> ExperimentPlan {
    let mut plan = ExperimentPlan::new();
    for seed in [1u64, 2, 3, 4] {
        plan.push(RunSpec::of(ScenarioKind::HighVariability, StrategyKind::HybridMixed).seed(seed));
        plan.push(RunSpec::of(ScenarioKind::Static, StrategyKind::StaticReserved).seed(seed));
    }
    plan
}

fn rendered_traces(jobs: usize) -> Vec<String> {
    let ctx = ExperimentCtx::new(42)
        .with_fast(true)
        .with_jobs(jobs)
        .with_trace(TraceMode::Full);
    let outcome = Engine::new(ctx).run_plan(&traced_plan());
    outcome
        .traces
        .iter()
        .map(|t| {
            let t = t.as_ref().expect("full mode traces every run");
            render_jsonl(&t.meta, &t.events)
        })
        .collect()
}

#[test]
fn traces_are_bit_identical_across_worker_counts() {
    let sequential = rendered_traces(1);
    let parallel = rendered_traces(4);
    assert_eq!(sequential.len(), parallel.len());
    for (i, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(a, b, "trace {i} differs between 1 and 4 workers");
    }
}

#[test]
fn hybrid_trace_covers_the_event_taxonomy() {
    let ctx = ExperimentCtx::new(42)
        .with_fast(true)
        .with_jobs(1)
        .with_trace(TraceMode::Full);
    let mut plan = ExperimentPlan::new();
    plan.push(RunSpec::of(
        ScenarioKind::HighVariability,
        StrategyKind::HybridMixed,
    ));
    let outcome = Engine::new(ctx).run_plan(&plan);
    let trace = outcome.traces[0].as_ref().expect("traced run");

    let has = |pred: &dyn Fn(&TraceKind) -> bool| trace.events.iter().any(|e| pred(&e.kind));
    assert!(
        has(&|k| matches!(k, TraceKind::Decision { .. })),
        "scheduler decisions are traced"
    );
    assert!(
        has(&|k| matches!(k, TraceKind::InstanceSpinUp { .. })),
        "instance lifecycle (spin-up) is traced"
    );
    assert!(
        has(&|k| matches!(k, TraceKind::RunEnd { .. })),
        "the event loop stamps a run-end record"
    );
    // Every event's serialized form names its kind and sim time.
    for ev in &trace.events {
        let json = ev.to_json();
        assert!(json.get("ev").is_some());
        assert!(json.get("t_us").is_some());
    }
    // The decision records carry the scheduler's view of the cluster.
    let decision = trace
        .events
        .iter()
        .find_map(|e| match &e.kind {
            TraceKind::Decision {
                placement,
                utilization,
                ..
            } => Some((placement, utilization)),
            _ => None,
        })
        .expect("at least one decision");
    assert!(["reserved", "on-demand", "on-demand-large", "queue"].contains(decision.0));
    assert!((0.0..=1.5).contains(decision.1), "utilization plausible");
}

#[test]
fn faulted_traces_are_bit_identical_across_worker_counts() {
    // The acceptance bar for the fault subsystem: a full fault plan
    // traced under 1 and 4 workers renders byte-identical JSONL.
    use hcloud_faults::FaultPlanId;
    let faulted = |jobs: usize| -> Vec<String> {
        let ctx = ExperimentCtx::new(42)
            .with_fast(true)
            .with_jobs(jobs)
            .with_trace(TraceMode::Full)
            .with_faults(FaultPlanId::FullChaos);
        let mut plan = ExperimentPlan::new();
        for seed in [1u64, 2, 3] {
            plan.push(
                RunSpec::of(ScenarioKind::HighVariability, StrategyKind::HybridMixed)
                    .seed(seed)
                    .map_config(|c| c.with_spot(hcloud::config::SpotPolicy::default())),
            );
        }
        let outcome = Engine::new(ctx).run_plan(&plan);
        outcome
            .traces
            .iter()
            .map(|t| {
                let t = t.as_ref().expect("full mode traces every run");
                render_jsonl(&t.meta, &t.events)
            })
            .collect()
    };
    let sequential = faulted(1);
    let parallel = faulted(4);
    assert_eq!(sequential, parallel, "faulted traces differ across workers");
    // The plan actually injected something observable.
    assert!(
        sequential.iter().any(|t| t.contains("\"fault-")),
        "no fault events in the full-chaos traces"
    );
}

#[test]
fn fault_events_carry_the_new_taxonomy() {
    // A hot fault plan must surface injection *and* recovery records,
    // and every record must serialize with kind + sim time like the
    // rest of the taxonomy.
    use hcloud_faults::FaultPlanId;
    let ctx = ExperimentCtx::new(42)
        .with_fast(true)
        .with_jobs(1)
        .with_trace(TraceMode::Full)
        .with_faults(FaultPlanId::FullChaos);
    let mut plan = ExperimentPlan::new();
    plan.push(
        RunSpec::of(ScenarioKind::HighVariability, StrategyKind::HybridMixed)
            .map_config(|c| c.with_spot(hcloud::config::SpotPolicy::default())),
    );
    let outcome = Engine::new(ctx).run_plan(&plan);
    let trace = outcome.traces[0].as_ref().expect("traced run");

    let fault_names: Vec<&str> = trace
        .events
        .iter()
        .map(|e| e.kind.name())
        .filter(|n| n.starts_with("fault-") || n.starts_with("recovery-"))
        .collect();
    assert!(
        !fault_names.is_empty(),
        "full-chaos hybrid run recorded no fault/recovery events"
    );
    for ev in &trace.events {
        let json = ev.to_json();
        assert!(json.get("ev").is_some());
        assert!(json.get("t_us").is_some());
    }
}

#[test]
fn off_mode_records_nothing() {
    let ctx = ExperimentCtx::new(42).with_fast(true).with_jobs(2);
    assert_eq!(ctx.trace, TraceMode::Off);
    let outcome = Engine::new(ctx).run_plan(&traced_plan());
    assert!(outcome.traces.iter().all(Option::is_none));
}
