//! Umbrella crate for the HCloud reproduction workspace.
//!
//! This root package exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. The actual library
//! surface lives in the member crates:
//!
//! * [`hcloud`] — the provisioning system (strategies, policies, runner);
//! * [`hcloud_sim`] — discrete-event simulation substrate;
//! * [`hcloud_interference`] — shared-resource interference model;
//! * [`hcloud_cloud`] — cloud provider model;
//! * [`hcloud_workloads`] — workload and scenario generators;
//! * [`hcloud_quasar`] — profiling/classification substrate;
//! * [`hcloud_pricing`] — pricing models and cost accounting.

pub use hcloud;
pub use hcloud_cloud;
pub use hcloud_interference;
pub use hcloud_pricing;
pub use hcloud_quasar;
pub use hcloud_sim;
pub use hcloud_workloads;
